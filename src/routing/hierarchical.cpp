#include "routing/hierarchical.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace massf::routing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// Mask-independent decomposition of the network: node → (domain, local id),
// per-domain node/link lists, the border set. Shared across fault epochs.
struct HierarchicalRoutingTables::Topo {
  NodeId nodes = 0;
  LinkId links = 0;
  int domains = 0;
  std::vector<int> domain_of;              // per node
  std::vector<int> local_of;               // per node, position in its domain
  std::vector<std::int64_t> dom_node_off;  // domains + 1
  std::vector<NodeId> dom_nodes;           // ascending global ids per domain
  std::vector<std::int64_t> dom_link_off;  // domains + 1
  std::vector<LinkId> dom_links;           // intra-domain links per domain
  std::vector<LinkId> inter_links;         // links joining two domains
  std::vector<NodeId> borders;             // ascending global ids
  std::vector<int> border_index;           // per node; -1 = not a border
  std::vector<std::int64_t> dom_border_off;  // domains + 1
  std::vector<int> dom_borders;            // border indices per domain

  static std::shared_ptr<const Topo> make(const Network& network);
};

std::shared_ptr<const HierarchicalRoutingTables::Topo>
HierarchicalRoutingTables::Topo::make(const Network& network) {
  auto topo = std::make_shared<Topo>();
  const NodeId n = network.node_count();
  topo->nodes = n;
  topo->links = network.link_count();
  topo->domain_of = network.domain_of_nodes();
  int domains = 0;
  for (int d : topo->domain_of) {
    MASSF_REQUIRE(d >= 0, "node domain ids must be non-negative");
    domains = std::max(domains, d + 1);
  }
  topo->domains = domains;

  // Group nodes by domain (ascending global id within each group).
  topo->dom_node_off.assign(static_cast<std::size_t>(domains) + 1, 0);
  for (int d : topo->domain_of) topo->dom_node_off[static_cast<std::size_t>(d) + 1]++;
  for (int i = 0; i < domains; ++i)
    topo->dom_node_off[static_cast<std::size_t>(i) + 1] +=
        topo->dom_node_off[static_cast<std::size_t>(i)];
  topo->dom_nodes.resize(static_cast<std::size_t>(n));
  topo->local_of.resize(static_cast<std::size_t>(n));
  {
    std::vector<std::int64_t> cursor(topo->dom_node_off.begin(),
                                     topo->dom_node_off.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      const auto d = static_cast<std::size_t>(
          topo->domain_of[static_cast<std::size_t>(v)]);
      const std::int64_t at = cursor[d]++;
      topo->dom_nodes[static_cast<std::size_t>(at)] = v;
      topo->local_of[static_cast<std::size_t>(v)] =
          static_cast<int>(at - topo->dom_node_off[d]);
    }
  }
  for (int i = 0; i < domains; ++i) {
    const std::int64_t size = topo->dom_node_off[static_cast<std::size_t>(i) + 1] -
                              topo->dom_node_off[static_cast<std::size_t>(i)];
    MASSF_REQUIRE(size < 0xFFFF,
                  "domain " << i << " has " << size
                            << " nodes; hierarchical routing supports at most "
                               "65534 per domain — split the domain");
  }

  // Split links into intra-domain (grouped by domain) and inter-domain;
  // endpoints of inter-domain links are the borders.
  std::vector<char> is_border(static_cast<std::size_t>(n), 0);
  topo->dom_link_off.assign(static_cast<std::size_t>(domains) + 1, 0);
  for (LinkId l = 0; l < topo->links; ++l) {
    const topology::Link& link = network.link(l);
    const int da = topo->domain_of[static_cast<std::size_t>(link.a)];
    const int db = topo->domain_of[static_cast<std::size_t>(link.b)];
    if (da == db) {
      topo->dom_link_off[static_cast<std::size_t>(da) + 1]++;
    } else {
      topo->inter_links.push_back(l);
      is_border[static_cast<std::size_t>(link.a)] = 1;
      is_border[static_cast<std::size_t>(link.b)] = 1;
    }
  }
  for (int i = 0; i < domains; ++i)
    topo->dom_link_off[static_cast<std::size_t>(i) + 1] +=
        topo->dom_link_off[static_cast<std::size_t>(i)];
  topo->dom_links.resize(static_cast<std::size_t>(topo->links) -
                         topo->inter_links.size());
  {
    std::vector<std::int64_t> cursor(topo->dom_link_off.begin(),
                                     topo->dom_link_off.end() - 1);
    for (LinkId l = 0; l < topo->links; ++l) {
      const topology::Link& link = network.link(l);
      const int da = topo->domain_of[static_cast<std::size_t>(link.a)];
      if (da != topo->domain_of[static_cast<std::size_t>(link.b)]) continue;
      topo->dom_links[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(da)]++)] = l;
    }
  }

  topo->border_index.assign(static_cast<std::size_t>(n), -1);
  topo->dom_border_off.assign(static_cast<std::size_t>(domains) + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (!is_border[static_cast<std::size_t>(v)]) continue;
    topo->border_index[static_cast<std::size_t>(v)] =
        static_cast<int>(topo->borders.size());
    topo->borders.push_back(v);
    topo->dom_border_off[static_cast<std::size_t>(
        topo->domain_of[static_cast<std::size_t>(v)]) + 1]++;
  }
  for (int i = 0; i < domains; ++i)
    topo->dom_border_off[static_cast<std::size_t>(i) + 1] +=
        topo->dom_border_off[static_cast<std::size_t>(i)];
  topo->dom_borders.resize(topo->borders.size());
  {
    std::vector<std::int64_t> cursor(topo->dom_border_off.begin(),
                                     topo->dom_border_off.end() - 1);
    for (int b = 0; b < static_cast<int>(topo->borders.size()); ++b) {
      const auto d = static_cast<std::size_t>(topo->domain_of[
          static_cast<std::size_t>(topo->borders[static_cast<std::size_t>(b)])]);
      topo->dom_borders[static_cast<std::size_t>(cursor[d]++)] = b;
    }
  }
  return topo;
}

HierarchicalRoutingTables HierarchicalRoutingTables::build(
    const Network& network) {
  Reachability reach;
  HierarchicalRoutingTables tables = build_partial(network, &reach);
  MASSF_REQUIRE(reach.fully_connected(),
                "network is not connected ("
                    << reach.component_count
                    << " components); use build_partial (or a "
                       "fault::FaultTimeline) to route the surviving "
                       "components explicitly");
  return tables;
}

HierarchicalRoutingTables HierarchicalRoutingTables::build_partial(
    const Network& network, Reachability* reachability,
    const std::vector<char>* links_up, const std::vector<char>* nodes_up,
    const HierarchicalRoutingTables* previous) {
  const NodeId n = network.node_count();
  MASSF_REQUIRE(n > 0, "cannot route an empty network");
  MASSF_REQUIRE(!links_up ||
                    links_up->size() ==
                        static_cast<std::size_t>(network.link_count()),
                "links_up mask size must equal link count");
  MASSF_REQUIRE(!nodes_up ||
                    nodes_up->size() == static_cast<std::size_t>(n),
                "nodes_up mask size must equal node count");

  HierarchicalRoutingTables h;
  h.n_ = n;
  if (previous != nullptr) {
    MASSF_REQUIRE(previous->topo_ && previous->topo_->nodes == n &&
                      previous->topo_->links == network.link_count(),
                  "previous hierarchical tables were built from a different "
                  "network");
    h.topo_ = previous->topo_;
  } else {
    h.topo_ = Topo::make(network);
  }
  const Topo& topo = *h.topo_;
  const int domains = topo.domains;

  h.active_.assign(static_cast<std::size_t>(n), 1);
  if (nodes_up) {
    for (NodeId v = 0; v < n; ++v)
      h.active_[static_cast<std::size_t>(v)] =
          (*nodes_up)[static_cast<std::size_t>(v)] ? 1 : 0;
  }
  const auto link_active = [&](LinkId l) {
    return !links_up || (*links_up)[static_cast<std::size_t>(l)] != 0;
  };
  const auto node_active = [&](NodeId v) {
    return h.active_[static_cast<std::size_t>(v)] != 0;
  };

  // ---- Global active adjacency, one slot per distinct live neighbor ----
  // (ascending neighbor; the slot carries the minimum-latency live link,
  // ties broken toward the lower link id — the arc a latency-metric
  // shortest path would take).
  {
    struct Half {
      NodeId to;
      double lat;
      LinkId link;
    };
    std::vector<std::int64_t> deg(static_cast<std::size_t>(n) + 1, 0);
    for (LinkId l = 0; l < network.link_count(); ++l) {
      const topology::Link& link = network.link(l);
      if (!link_active(l) || !node_active(link.a) || !node_active(link.b))
        continue;
      deg[static_cast<std::size_t>(link.a) + 1]++;
      deg[static_cast<std::size_t>(link.b) + 1]++;
    }
    for (NodeId v = 0; v < n; ++v)
      deg[static_cast<std::size_t>(v) + 1] += deg[static_cast<std::size_t>(v)];
    std::vector<Half> halves(static_cast<std::size_t>(deg.back()));
    std::vector<std::int64_t> cursor(deg.begin(), deg.end() - 1);
    for (LinkId l = 0; l < network.link_count(); ++l) {
      const topology::Link& link = network.link(l);
      if (!link_active(l) || !node_active(link.a) || !node_active(link.b))
        continue;
      halves[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(link.a)]++)] = {link.b,
                                                          link.latency_s, l};
      halves[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(link.b)]++)] = {link.a,
                                                          link.latency_s, l};
    }
    h.adj_off_.assign(static_cast<std::size_t>(n) + 1, 0);
    h.adj_to_.reserve(halves.size());
    h.adj_link_.reserve(halves.size());
    h.adj_lat_.reserve(halves.size());
    for (NodeId v = 0; v < n; ++v) {
      const auto begin = halves.begin() + deg[static_cast<std::size_t>(v)];
      const auto end = halves.begin() + deg[static_cast<std::size_t>(v) + 1];
      std::sort(begin, end, [](const Half& x, const Half& y) {
        if (x.to != y.to) return x.to < y.to;
        if (x.lat != y.lat) return x.lat < y.lat;
        return x.link < y.link;
      });
      for (auto it = begin; it != end; ++it) {
        if (it != begin && it->to == (it - 1)->to) continue;  // keep best
        h.adj_to_.push_back(it->to);
        h.adj_link_.push_back(it->link);
        h.adj_lat_.push_back(it->lat);
      }
      h.adj_off_[static_cast<std::size_t>(v) + 1] =
          static_cast<std::int64_t>(h.adj_to_.size());
    }
  }

  // ---- Per-domain restricted all-pairs tables ----
  h.domains_.resize(static_cast<std::size_t>(domains));
  h.shared_domains_ = 0;
  {
    // Scratch reused across domains (sized for the largest).
    std::int64_t max_dom = 0;
    for (int i = 0; i < domains; ++i)
      max_dom = std::max(max_dom,
                         topo.dom_node_off[static_cast<std::size_t>(i) + 1] -
                             topo.dom_node_off[static_cast<std::size_t>(i)]);
    std::vector<double> sdist(static_cast<std::size_t>(max_dom));
    std::vector<int> parent(static_cast<std::size_t>(max_dom));
    std::vector<char> done(static_cast<std::size_t>(max_dom));
    std::vector<int> settle;
    settle.reserve(static_cast<std::size_t>(max_dom));
    std::vector<std::int64_t> ladj_off;
    std::vector<int> ladj_to;
    std::vector<double> ladj_lat;

    for (int i = 0; i < domains; ++i) {
      const std::int64_t node_lo = topo.dom_node_off[static_cast<std::size_t>(i)];
      const std::int64_t node_hi =
          topo.dom_node_off[static_cast<std::size_t>(i) + 1];
      const int d = static_cast<int>(node_hi - node_lo);
      const std::int64_t link_lo = topo.dom_link_off[static_cast<std::size_t>(i)];
      const std::int64_t link_hi =
          topo.dom_link_off[static_cast<std::size_t>(i) + 1];

      std::vector<char> node_mask(static_cast<std::size_t>(d));
      for (int k = 0; k < d; ++k)
        node_mask[static_cast<std::size_t>(k)] = h.active_[static_cast<std::size_t>(
            topo.dom_nodes[static_cast<std::size_t>(node_lo + k)])];
      std::vector<char> link_mask(static_cast<std::size_t>(link_hi - link_lo));
      for (std::int64_t k = link_lo; k < link_hi; ++k)
        link_mask[static_cast<std::size_t>(k - link_lo)] =
            link_active(topo.dom_links[static_cast<std::size_t>(k)]) ? 1 : 0;

      if (previous != nullptr) {
        const auto& prior = previous->domains_[static_cast<std::size_t>(i)];
        if (prior && prior->node_mask == node_mask &&
            prior->link_mask == link_mask) {
          h.domains_[static_cast<std::size_t>(i)] = prior;
          h.shared_domains_++;
          continue;
        }
      }

      DomainTable dt;
      dt.size = d;
      dt.dist.assign(static_cast<std::size_t>(d) * static_cast<std::size_t>(d),
                     kInf);
      dt.next.assign(static_cast<std::size_t>(d) * static_cast<std::size_t>(d),
                     kNoHop);
      dt.node_mask = std::move(node_mask);
      dt.link_mask = std::move(link_mask);

      // Local adjacency over the domain's live intra links (both
      // directions; parallel links kept — the Dijkstra relaxes each).
      ladj_off.assign(static_cast<std::size_t>(d) + 1, 0);
      for (std::int64_t k = link_lo; k < link_hi; ++k) {
        if (!dt.link_mask[static_cast<std::size_t>(k - link_lo)]) continue;
        const topology::Link& link =
            network.link(topo.dom_links[static_cast<std::size_t>(k)]);
        if (!node_active(link.a) || !node_active(link.b)) continue;
        ladj_off[static_cast<std::size_t>(
            topo.local_of[static_cast<std::size_t>(link.a)]) + 1]++;
        ladj_off[static_cast<std::size_t>(
            topo.local_of[static_cast<std::size_t>(link.b)]) + 1]++;
      }
      for (int v = 0; v < d; ++v)
        ladj_off[static_cast<std::size_t>(v) + 1] +=
            ladj_off[static_cast<std::size_t>(v)];
      ladj_to.resize(static_cast<std::size_t>(ladj_off[static_cast<std::size_t>(d)]));
      ladj_lat.resize(ladj_to.size());
      {
        std::vector<std::int64_t> cursor(ladj_off.begin(), ladj_off.end() - 1);
        for (std::int64_t k = link_lo; k < link_hi; ++k) {
          if (!dt.link_mask[static_cast<std::size_t>(k - link_lo)]) continue;
          const topology::Link& link =
              network.link(topo.dom_links[static_cast<std::size_t>(k)]);
          if (!node_active(link.a) || !node_active(link.b)) continue;
          const int la = topo.local_of[static_cast<std::size_t>(link.a)];
          const int lb = topo.local_of[static_cast<std::size_t>(link.b)];
          std::int64_t at = cursor[static_cast<std::size_t>(la)]++;
          ladj_to[static_cast<std::size_t>(at)] = lb;
          ladj_lat[static_cast<std::size_t>(at)] = link.latency_s;
          at = cursor[static_cast<std::size_t>(lb)]++;
          ladj_to[static_cast<std::size_t>(at)] = la;
          ladj_lat[static_cast<std::size_t>(at)] = link.latency_s;
        }
      }

      // Restricted Dijkstra from every live local source, with the dense
      // backend's tie-break (strict improvement, or equal cost with a
      // lower-id parent) so restricted first hops match it bit-for-bit.
      for (int ls = 0; ls < d; ++ls) {
        if (!dt.node_mask[static_cast<std::size_t>(ls)]) continue;
        std::fill(sdist.begin(), sdist.begin() + d, kInf);
        std::fill(parent.begin(), parent.begin() + d, -1);
        std::fill(done.begin(), done.begin() + d, 0);
        settle.clear();
        using Item = std::pair<double, int>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
        sdist[static_cast<std::size_t>(ls)] = 0;
        heap.emplace(0.0, ls);
        while (!heap.empty()) {
          const auto [dd, u] = heap.top();
          heap.pop();
          if (done[static_cast<std::size_t>(u)]) continue;
          done[static_cast<std::size_t>(u)] = 1;
          settle.push_back(u);
          for (std::int64_t k = ladj_off[static_cast<std::size_t>(u)];
               k < ladj_off[static_cast<std::size_t>(u) + 1]; ++k) {
            const int to = ladj_to[static_cast<std::size_t>(k)];
            const double cand = dd + ladj_lat[static_cast<std::size_t>(k)];
            double& best = sdist[static_cast<std::size_t>(to)];
            const bool improves =
                cand < best ||
                (cand == best && parent[static_cast<std::size_t>(to)] >= 0 &&
                 u < parent[static_cast<std::size_t>(to)]);
            if (improves && !done[static_cast<std::size_t>(to)]) {
              best = cand;
              parent[static_cast<std::size_t>(to)] = u;
              heap.emplace(cand, to);
            }
          }
        }
        double* drow = dt.dist.data() +
                       static_cast<std::size_t>(ls) * static_cast<std::size_t>(d);
        std::uint16_t* nrow = dt.next.data() +
                              static_cast<std::size_t>(ls) *
                                  static_cast<std::size_t>(d);
        for (const int v : settle) {
          drow[v] = sdist[static_cast<std::size_t>(v)];
          if (v == ls) {
            nrow[v] = static_cast<std::uint16_t>(ls);
            continue;
          }
          const int p = parent[static_cast<std::size_t>(v)];
          nrow[v] = p == ls ? static_cast<std::uint16_t>(v) : nrow[p];
        }
      }
      h.domains_[static_cast<std::size_t>(i)] =
          std::make_shared<const DomainTable>(std::move(dt));
    }
  }

  // ---- Exact border-to-border distances over the quotient graph ----
  // (vertices: borders; edges: restricted intra-domain border pairs plus
  // live inter-domain links — exact because every shortest path decomposes
  // into maximal intra-domain segments between borders).
  const int B = static_cast<int>(topo.borders.size());
  h.border_dist_.assign(static_cast<std::size_t>(B) * static_cast<std::size_t>(B),
                        kInf);
  if (B > 0) {
    std::vector<std::vector<std::pair<int, double>>> badj(
        static_cast<std::size_t>(B));
    for (int i = 0; i < domains; ++i) {
      const DomainTable& dt = h.domain_table(i);
      const std::int64_t blo = topo.dom_border_off[static_cast<std::size_t>(i)];
      const std::int64_t bhi =
          topo.dom_border_off[static_cast<std::size_t>(i) + 1];
      for (std::int64_t x = blo; x < bhi; ++x) {
        const int a = topo.dom_borders[static_cast<std::size_t>(x)];
        const int la = topo.local_of[static_cast<std::size_t>(
            topo.borders[static_cast<std::size_t>(a)])];
        for (std::int64_t y = x + 1; y < bhi; ++y) {
          const int b = topo.dom_borders[static_cast<std::size_t>(y)];
          const int lb = topo.local_of[static_cast<std::size_t>(
              topo.borders[static_cast<std::size_t>(b)])];
          const double w = dt.dist[static_cast<std::size_t>(la) *
                                       static_cast<std::size_t>(dt.size) +
                                   static_cast<std::size_t>(lb)];
          if (!(w < kInf)) continue;
          badj[static_cast<std::size_t>(a)].emplace_back(b, w);
          badj[static_cast<std::size_t>(b)].emplace_back(a, w);
        }
      }
    }
    for (const LinkId l : topo.inter_links) {
      if (!link_active(l)) continue;
      const topology::Link& link = network.link(l);
      if (!node_active(link.a) || !node_active(link.b)) continue;
      const int a = topo.border_index[static_cast<std::size_t>(link.a)];
      const int b = topo.border_index[static_cast<std::size_t>(link.b)];
      badj[static_cast<std::size_t>(a)].emplace_back(b, link.latency_s);
      badj[static_cast<std::size_t>(b)].emplace_back(a, link.latency_s);
    }

    std::vector<char> done(static_cast<std::size_t>(B));
    for (int a = 0; a < B; ++a) {
      if (!node_active(topo.borders[static_cast<std::size_t>(a)])) continue;
      double* row = h.border_dist_.data() +
                    static_cast<std::size_t>(a) * static_cast<std::size_t>(B);
      std::fill(done.begin(), done.end(), 0);
      using Item = std::pair<double, int>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
      row[a] = 0;
      heap.emplace(0.0, a);
      while (!heap.empty()) {
        const auto [dd, u] = heap.top();
        heap.pop();
        if (done[static_cast<std::size_t>(u)]) continue;
        done[static_cast<std::size_t>(u)] = 1;
        for (const auto& [to, w] : badj[static_cast<std::size_t>(u)]) {
          const double cand = dd + w;
          if (cand < row[to] && !done[static_cast<std::size_t>(to)]) {
            row[to] = cand;
            heap.emplace(cand, to);
          }
        }
      }
    }
  }

  // ---- Reachability: BFS component labels over the live adjacency ----
  // (ascending source order, so labels match the dense backend's).
  h.reach_.component.assign(static_cast<std::size_t>(n), -1);
  h.reach_.component_count = 0;
  h.reach_.inactive_nodes = 0;
  {
    std::vector<NodeId> queue;
    for (NodeId v = 0; v < n; ++v) {
      if (!node_active(v)) {
        h.reach_.inactive_nodes++;
        continue;
      }
      if (h.reach_.component[static_cast<std::size_t>(v)] >= 0) continue;
      const int label = h.reach_.component_count++;
      queue.clear();
      queue.push_back(v);
      h.reach_.component[static_cast<std::size_t>(v)] = label;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const NodeId u = queue[head];
        for (std::int64_t k = h.adj_off_[static_cast<std::size_t>(u)];
             k < h.adj_off_[static_cast<std::size_t>(u) + 1]; ++k) {
          const NodeId to = h.adj_to_[static_cast<std::size_t>(k)];
          if (h.reach_.component[static_cast<std::size_t>(to)] >= 0) continue;
          h.reach_.component[static_cast<std::size_t>(to)] = label;
          queue.push_back(to);
        }
      }
    }
  }
  if (reachability) *reachability = h.reach_;
  return h;
}

double HierarchicalRoutingTables::dist_to_border(int domain, NodeId x,
                                                 int border) const {
  const Topo& topo = *topo_;
  const DomainTable& dt = domain_table(domain);
  const int lx = topo.local_of[static_cast<std::size_t>(x)];
  const int lb = topo.local_of[static_cast<std::size_t>(
      topo.borders[static_cast<std::size_t>(border)])];
  return dt.dist[static_cast<std::size_t>(lx) *
                     static_cast<std::size_t>(dt.size) +
                 static_cast<std::size_t>(lb)];
}

double HierarchicalRoutingTables::distance(NodeId src, NodeId dst) const {
  MASSF_REQUIRE(src >= 0 && src < n_, "source out of range");
  MASSF_REQUIRE(dst >= 0 && dst < n_, "destination out of range");
  if (!active_[static_cast<std::size_t>(src)] ||
      !active_[static_cast<std::size_t>(dst)]) {
    return kInf;
  }
  if (src == dst) return 0.0;
  if (!reach_.pair_reachable(src, dst)) return kInf;
  const Topo& topo = *topo_;
  const int i = topo.domain_of[static_cast<std::size_t>(src)];
  const int j = topo.domain_of[static_cast<std::size_t>(dst)];
  double best = kInf;
  if (i == j) {
    const DomainTable& dt = domain_table(i);
    best = dt.dist[static_cast<std::size_t>(
                       topo.local_of[static_cast<std::size_t>(src)]) *
                       static_cast<std::size_t>(dt.size) +
                   static_cast<std::size_t>(
                       topo.local_of[static_cast<std::size_t>(dst)])];
  }
  const int B = static_cast<int>(topo.borders.size());
  const std::int64_t ilo = topo.dom_border_off[static_cast<std::size_t>(i)];
  const std::int64_t ihi = topo.dom_border_off[static_cast<std::size_t>(i) + 1];
  const std::int64_t jlo = topo.dom_border_off[static_cast<std::size_t>(j)];
  const std::int64_t jhi = topo.dom_border_off[static_cast<std::size_t>(j) + 1];
  for (std::int64_t x = ilo; x < ihi; ++x) {
    const int a = topo.dom_borders[static_cast<std::size_t>(x)];
    const double da = dist_to_border(i, src, a);
    if (!(da < best)) continue;  // da >= best (or inf) can't improve
    const double* row = border_dist_.data() +
                        static_cast<std::size_t>(a) * static_cast<std::size_t>(B);
    for (std::int64_t y = jlo; y < jhi; ++y) {
      const int b = topo.dom_borders[static_cast<std::size_t>(y)];
      const double bd = row[b];
      if (!(bd < kInf)) continue;
      const double db = dist_to_border(j, dst, b);
      const double total = da + bd + db;
      if (total < best) best = total;
    }
  }
  return best;
}

std::int64_t HierarchicalRoutingTables::best_neighbor(NodeId src,
                                                      NodeId dst) const {
  std::int64_t best = -1;
  double best_cost = kInf;
  for (std::int64_t k = adj_off_[static_cast<std::size_t>(src)];
       k < adj_off_[static_cast<std::size_t>(src) + 1]; ++k) {
    const double dv = distance(adj_to_[static_cast<std::size_t>(k)], dst);
    if (!(dv < kInf)) continue;
    const double cost = adj_lat_[static_cast<std::size_t>(k)] + dv;
    // Strict improvement over ascending neighbor ids: exact ties resolve to
    // the lowest-id neighbor, like the dense backend.
    if (cost < best_cost) {
      best_cost = cost;
      best = k;
    }
  }
  return best;
}

void HierarchicalRoutingTables::lookup(NodeId src, NodeId dst, NodeId* hop,
                                       LinkId* link) const {
  MASSF_REQUIRE(src >= 0 && src < n_, "source out of range");
  MASSF_REQUIRE(dst >= 0 && dst < n_, "destination out of range");
  *hop = -1;
  *link = -1;
  if (src == dst) {
    if (active_[static_cast<std::size_t>(src)]) *hop = src;
    return;
  }
  if (!active_[static_cast<std::size_t>(src)] ||
      !active_[static_cast<std::size_t>(dst)] ||
      !reach_.pair_reachable(src, dst)) {
    return;
  }
  const Topo& topo = *topo_;
  const int i = topo.domain_of[static_cast<std::size_t>(src)];
  const int j = topo.domain_of[static_cast<std::size_t>(dst)];
  if (i == j) {
    // Same-domain fast path: when the restricted intra-domain route is
    // already optimal (it almost always is), answer from the O(1) local
    // first-hop table. Only when leaving the domain is strictly shorter
    // does the neighbor argmin below take over.
    const DomainTable& dt = domain_table(i);
    const int ls = topo.local_of[static_cast<std::size_t>(src)];
    const int lt = topo.local_of[static_cast<std::size_t>(dst)];
    const double intra = dt.dist[static_cast<std::size_t>(ls) *
                                     static_cast<std::size_t>(dt.size) +
                                 static_cast<std::size_t>(lt)];
    double detour = kInf;
    const int B = static_cast<int>(topo.borders.size());
    const std::int64_t blo = topo.dom_border_off[static_cast<std::size_t>(i)];
    const std::int64_t bhi =
        topo.dom_border_off[static_cast<std::size_t>(i) + 1];
    for (std::int64_t x = blo; x < bhi; ++x) {
      const int a = topo.dom_borders[static_cast<std::size_t>(x)];
      const double da = dist_to_border(i, src, a);
      if (!(da < detour)) continue;
      const double* row = border_dist_.data() + static_cast<std::size_t>(a) *
                                                    static_cast<std::size_t>(B);
      for (std::int64_t y = blo; y < bhi; ++y) {
        const int b = topo.dom_borders[static_cast<std::size_t>(y)];
        if (!(row[b] < kInf)) continue;
        const double total = da + row[b] + dist_to_border(i, dst, b);
        if (total < detour) detour = total;
      }
    }
    if (intra <= detour) {
      const std::uint16_t local = dt.next[static_cast<std::size_t>(ls) *
                                              static_cast<std::size_t>(dt.size) +
                                          static_cast<std::size_t>(lt)];
      MASSF_CHECK(local != kNoHop, "reachable intra pair without a first hop");
      *hop = topo.dom_nodes[static_cast<std::size_t>(
          topo.dom_node_off[static_cast<std::size_t>(i)] + local)];
      // Resolve the hop's link from the adjacency (ascending neighbor ids).
      const auto begin = adj_to_.begin() + adj_off_[static_cast<std::size_t>(src)];
      const auto end = adj_to_.begin() + adj_off_[static_cast<std::size_t>(src) + 1];
      const auto it = std::lower_bound(begin, end, *hop);
      MASSF_CHECK(it != end && *it == *hop, "intra first hop missing from adjacency");
      *link = adj_link_[static_cast<std::size_t>(it - adj_to_.begin())];
      return;
    }
  }
  const std::int64_t k = best_neighbor(src, dst);
  MASSF_CHECK(k >= 0, "reachable pair without a best neighbor");
  *hop = adj_to_[static_cast<std::size_t>(k)];
  *link = adj_link_[static_cast<std::size_t>(k)];
}

NodeId HierarchicalRoutingTables::next_hop(NodeId src, NodeId dst) const {
  NodeId hop;
  LinkId link;
  lookup(src, dst, &hop, &link);
  return hop;
}

LinkId HierarchicalRoutingTables::next_link(NodeId src, NodeId dst) const {
  NodeId hop;
  LinkId link;
  lookup(src, dst, &hop, &link);
  return link;
}

std::size_t HierarchicalRoutingTables::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& dt : domains_) {
    if (!dt) continue;
    total += dt->dist.capacity() * sizeof(double) +
             dt->next.capacity() * sizeof(std::uint16_t) +
             dt->node_mask.capacity() + dt->link_mask.capacity();
  }
  total += border_dist_.capacity() * sizeof(double);
  total += active_.capacity();
  total += reach_.component.capacity() * sizeof(int);
  total += adj_off_.capacity() * sizeof(std::int64_t) +
           adj_to_.capacity() * sizeof(NodeId) +
           adj_link_.capacity() * sizeof(LinkId) +
           adj_lat_.capacity() * sizeof(double);
  if (topo_) {
    const Topo& t = *topo_;
    total += t.domain_of.capacity() * sizeof(int) +
             t.local_of.capacity() * sizeof(int) +
             t.dom_node_off.capacity() * sizeof(std::int64_t) +
             t.dom_nodes.capacity() * sizeof(NodeId) +
             t.dom_link_off.capacity() * sizeof(std::int64_t) +
             t.dom_links.capacity() * sizeof(LinkId) +
             t.inter_links.capacity() * sizeof(LinkId) +
             t.borders.capacity() * sizeof(NodeId) +
             t.border_index.capacity() * sizeof(int) +
             t.dom_border_off.capacity() * sizeof(std::int64_t) +
             t.dom_borders.capacity() * sizeof(int);
  }
  return total;
}

int HierarchicalRoutingTables::domain_count() const { return topo_->domains; }

int HierarchicalRoutingTables::border_count() const {
  return static_cast<int>(topo_->borders.size());
}

std::shared_ptr<const RoutingView> make_routing_view(
    const Network& network, Reachability* reachability,
    const std::vector<char>* links_up, const std::vector<char>* nodes_up,
    const RoutingViewOptions& options, const RoutingView* previous) {
  if (network.node_count() < options.dense_threshold ||
      network.domain_count() <= 1) {
    return std::make_shared<const RoutingTables>(
        RoutingTables::build_partial(network, reachability, links_up,
                                     nodes_up));
  }
  const auto* prior =
      dynamic_cast<const HierarchicalRoutingTables*>(previous);
  return std::make_shared<const HierarchicalRoutingTables>(
      HierarchicalRoutingTables::build_partial(network, reachability, links_up,
                                               nodes_up, prior));
}

}  // namespace massf::routing
