#include "partition/initial.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/algorithms.hpp"
#include "partition/refine.hpp"

namespace massf::partition {

using graph::ArcIndex;
using graph::Graph;
using graph::VertexId;

namespace {

/// Normalized load of a vertex set fraction: max over non-degenerate
/// constraints of side_weight[c] / total[c].
double load_fraction(const std::vector<double>& side,
                     const std::vector<double>& totals) {
  double worst = 0;
  for (std::size_t c = 0; c < totals.size(); ++c)
    if (totals[c] > 0) worst = std::max(worst, side[c] / totals[c]);
  return worst;
}

/// One greedy-growing bisection trial from `seed`. Returns side flags
/// (true = left/grown side) targeting `left_fraction` of every constraint.
std::vector<char> grow_from(const Graph& graph, VertexId seed,
                            double left_fraction, Rng& rng) {
  const VertexId n = graph.vertex_count();
  const int ncon = graph.constraint_count();
  std::vector<char> in_left(static_cast<std::size_t>(n), 0);
  std::vector<double> connect(static_cast<std::size_t>(n), 0.0);
  std::vector<double> totals(static_cast<std::size_t>(ncon), 0.0);
  std::vector<double> side(static_cast<std::size_t>(ncon), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    const auto vw = graph.vertex_weights(v);
    for (int c = 0; c < ncon; ++c)
      totals[static_cast<std::size_t>(c)] += vw[static_cast<std::size_t>(c)];
  }

  auto add_vertex = [&](VertexId v) {
    in_left[static_cast<std::size_t>(v)] = 1;
    const auto vw = graph.vertex_weights(v);
    for (int c = 0; c < ncon; ++c)
      side[static_cast<std::size_t>(c)] += vw[static_cast<std::size_t>(c)];
    for (ArcIndex a = graph.arc_begin(v); a != graph.arc_end(v); ++a)
      connect[static_cast<std::size_t>(graph.arc_target(a))] +=
          graph.arc_weight(a);
  };

  add_vertex(seed);
  // Grow until the left side carries at least `left_fraction` of the most
  // binding constraint — but always leave at least one vertex on the right.
  VertexId left_count = 1;
  while (left_count < n - 1 && load_fraction(side, totals) < left_fraction) {
    // Pick the unadded vertex with max connection to the region; fall back
    // to a random unadded vertex when the frontier is empty (disconnected
    // graphs).
    VertexId best = -1;
    double best_connect = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (in_left[static_cast<std::size_t>(v)]) continue;
      if (connect[static_cast<std::size_t>(v)] > best_connect) {
        best_connect = connect[static_cast<std::size_t>(v)];
        best = v;
      }
    }
    if (best < 0) {
      std::vector<VertexId> candidates;
      for (VertexId v = 0; v < n; ++v)
        if (!in_left[static_cast<std::size_t>(v)]) candidates.push_back(v);
      best = rng.pick(candidates);
    }
    add_vertex(best);
    ++left_count;
  }
  return in_left;
}

/// Score a bisection: primary = edge cut, secondary = balance violation.
double bisection_score(const Graph& graph, const std::vector<char>& in_left,
                       double left_fraction) {
  double cut = 0;
  for (VertexId u = 0; u < graph.vertex_count(); ++u)
    for (ArcIndex a = graph.arc_begin(u); a != graph.arc_end(u); ++a) {
      const VertexId v = graph.arc_target(a);
      if (u < v && in_left[static_cast<std::size_t>(u)] !=
                       in_left[static_cast<std::size_t>(v)])
        cut += graph.arc_weight(a);
    }
  // Balance penalty: how far the worst constraint strays from the target,
  // scaled by total edge weight so it competes with cut on equal footing.
  const int ncon = graph.constraint_count();
  std::vector<double> totals(static_cast<std::size_t>(ncon), 0.0);
  std::vector<double> side(static_cast<std::size_t>(ncon), 0.0);
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    const auto vw = graph.vertex_weights(v);
    for (int c = 0; c < ncon; ++c) {
      totals[static_cast<std::size_t>(c)] += vw[static_cast<std::size_t>(c)];
      if (in_left[static_cast<std::size_t>(v)])
        side[static_cast<std::size_t>(c)] += vw[static_cast<std::size_t>(c)];
    }
  }
  double deviation = 0;
  for (int c = 0; c < ncon; ++c) {
    if (totals[static_cast<std::size_t>(c)] <= 0) continue;
    deviation = std::max(
        deviation, std::abs(side[static_cast<std::size_t>(c)] /
                                totals[static_cast<std::size_t>(c)] -
                            left_fraction));
  }
  const double scale = std::max(1.0, graph.total_edge_weight());
  return cut + deviation * scale;
}

void recurse(const Graph& graph, const std::vector<VertexId>& ids,
             int first_block, int block_count,
             const PartitionOptions& options, Rng& rng,
             Assignment& assignment) {
  MASSF_CHECK(static_cast<std::size_t>(block_count) <= ids.size(),
              "fewer vertices than blocks in recursion");
  if (block_count == 1) {
    for (VertexId v : ids) assignment[static_cast<std::size_t>(v)] = first_block;
    return;
  }

  const int left_blocks = block_count / 2;
  const int right_blocks = block_count - left_blocks;
  const double left_fraction =
      static_cast<double>(left_blocks) / static_cast<double>(block_count);

  const Graph sub = graph::induced_subgraph(graph, ids);

  std::vector<char> best;
  double best_score = std::numeric_limits<double>::infinity();
  const int trials = std::max(1, options.initial_trials);
  for (int t = 0; t < trials; ++t) {
    const auto seed =
        static_cast<VertexId>(rng.next_below(static_cast<std::uint64_t>(
            sub.vertex_count())));
    std::vector<char> candidate = grow_from(sub, seed, left_fraction, rng);
    const double score = bisection_score(sub, candidate, left_fraction);
    if (score < best_score) {
      best_score = score;
      best = std::move(candidate);
    }
  }
  MASSF_CHECK(!best.empty(), "no bisection candidate produced");

  // 2-way refinement of the winning bisection.
  Assignment two_way(best.size());
  for (std::size_t i = 0; i < best.size(); ++i) two_way[i] = best[i] ? 0 : 1;
  const std::vector<double> fractions{left_fraction, 1.0 - left_fraction};
  std::vector<double> epsilons = options.epsilon_per_constraint;
  if (epsilons.empty()) epsilons.assign(1, options.epsilon);
  rebalance(sub, two_way, fractions, epsilons, rng);
  greedy_refine(sub, two_way, fractions, epsilons, options.refine_passes,
                rng);

  std::vector<VertexId> left_ids, right_ids;
  for (std::size_t i = 0; i < two_way.size(); ++i)
    (two_way[i] == 0 ? left_ids : right_ids).push_back(ids[i]);

  // Guarantee each side can host its block count (refinement never empties
  // a side, but tiny graphs can still end up short). Steal arbitrary
  // vertices if needed — correctness over elegance at 10-vertex scale.
  while (static_cast<int>(left_ids.size()) < left_blocks) {
    left_ids.push_back(right_ids.back());
    right_ids.pop_back();
  }
  while (static_cast<int>(right_ids.size()) < right_blocks) {
    right_ids.push_back(left_ids.back());
    left_ids.pop_back();
  }

  recurse(graph, left_ids, first_block, left_blocks, options, rng, assignment);
  recurse(graph, right_ids, first_block + left_blocks, right_blocks, options,
          rng, assignment);
}

}  // namespace

Assignment initial_partition(const Graph& graph,
                             const PartitionOptions& options, Rng& rng) {
  MASSF_REQUIRE(options.parts >= 1, "parts must be >= 1");
  MASSF_REQUIRE(graph.vertex_count() >= options.parts,
                "cannot split " << graph.vertex_count() << " vertices into "
                                << options.parts << " blocks");
  Assignment assignment(static_cast<std::size_t>(graph.vertex_count()), 0);
  std::vector<VertexId> ids(static_cast<std::size_t>(graph.vertex_count()));
  std::iota(ids.begin(), ids.end(), 0);
  recurse(graph, ids, 0, options.parts, options, rng, assignment);
  return assignment;
}

}  // namespace massf::partition
