#include "partition/multiobjective.hpp"

#include <algorithm>
#include <numeric>

namespace massf::partition {

using graph::Graph;

std::vector<double> combine_objectives(const ObjectiveWeights& weights,
                                       double latency_cut, double traffic_cut,
                                       double latency_priority) {
  MASSF_REQUIRE(weights.latency.size() == weights.traffic.size(),
                "objective arrays must be parallel");
  MASSF_REQUIRE(latency_priority >= 0 && latency_priority <= 1,
                "latency priority must be in [0,1]");
  const double p = latency_priority;
  const bool use_latency = latency_cut > 0;
  const bool use_traffic = traffic_cut > 0;
  std::vector<double> combined(weights.latency.size(), 0.0);
  for (std::size_t i = 0; i < combined.size(); ++i) {
    double w = 0;
    if (use_latency) w += p * weights.latency[i] / latency_cut;
    if (use_traffic) w += (1 - p) * weights.traffic[i] / traffic_cut;
    combined[i] = w;
  }
  return combined;
}

MultiObjectiveResult partition_multiobjective(
    const Graph& graph, const ObjectiveWeights& weights,
    double latency_priority, const PartitionOptions& options) {
  MASSF_REQUIRE(weights.latency.size() ==
                    static_cast<std::size_t>(graph.arc_count()),
                "latency weights must cover every arc");
  MASSF_REQUIRE(weights.traffic.size() ==
                    static_cast<std::size_t>(graph.arc_count()),
                "traffic weights must cover every arc");

  const double latency_total =
      std::accumulate(weights.latency.begin(), weights.latency.end(), 0.0);
  const double traffic_total =
      std::accumulate(weights.traffic.begin(), weights.traffic.end(), 0.0);

  MultiObjectiveResult result;

  // Step 1+2: single-objective optimal cuts (skipped for degenerate or
  // zero-priority objectives — their normalization term would be unused).
  if (latency_total > 0 && latency_priority > 0) {
    const Graph latency_graph = graph.with_arc_weights(weights.latency);
    result.latency_cut =
        partition_multilevel(latency_graph, options).edge_cut;
  }
  if (traffic_total > 0 && latency_priority < 1) {
    const Graph traffic_graph = graph.with_arc_weights(weights.traffic);
    result.traffic_cut =
        partition_multilevel(traffic_graph, options).edge_cut;
  }

  // Degenerate cases: an optimal cut of zero means that objective is
  // satisfied perfectly by structure alone (e.g. the graph splits into k
  // zero-weight-separated components); fall back to the other objective.
  const bool latency_usable = result.latency_cut > 0;
  const bool traffic_usable = result.traffic_cut > 0;

  std::vector<double> combined;
  if (latency_usable || traffic_usable) {
    combined = combine_objectives(weights, result.latency_cut,
                                  result.traffic_cut, latency_priority);
  } else if (latency_total > 0) {
    combined = weights.latency;  // single-objective fallback
  } else {
    combined = weights.traffic;
  }

  // Step 3+4: final partition on the combined weights.
  const Graph combined_graph = graph.with_arc_weights(std::move(combined));
  result.partition = partition_multilevel(combined_graph, options);
  // Report the cut under the *original* structure weights of the caller's
  // graph (more meaningful than the synthetic combined value).
  result.partition.edge_cut = edge_cut(graph, result.partition.assignment);
  return result;
}

}  // namespace massf::partition
