// Baseline partitioners the paper's related work relies on.
//
// These exist to quantify what the multilevel partitioner buys
// (bench_ablation_partitioners) and to model the "simple hierarchical" and
// Netbed-style approaches §1 and §5 mention:
//  * random        — uniform random block per vertex (with occupancy fix-up);
//  * bfs_hierarchical — BFS order from a pseudo-peripheral vertex chopped
//    into contiguous weight-balanced chunks (the "simple hierarchical graph
//    partitioner" used by several emulators);
//  * greedy_kcluster — Netbed/ModelNet-style: k random cluster seeds, links
//    greedily claimed round-robin from each cluster's frontier.
#pragma once

#include <cstdint>

#include "partition/partition.hpp"

namespace massf::partition {

/// Uniform random assignment; guarantees no block is empty when
/// graph.vertex_count() >= parts.
Assignment partition_random(const graph::Graph& graph, int parts,
                            std::uint64_t seed);

/// BFS from a pseudo-peripheral vertex; the order is cut into `parts`
/// contiguous chunks of roughly equal constraint-0 weight.
Assignment partition_bfs_hierarchical(const graph::Graph& graph, int parts,
                                      std::uint64_t seed);

/// Greedy k-cluster growth: k distinct random seeds, then in round-robin
/// fashion each cluster claims the heaviest frontier edge's far endpoint.
/// Unreached vertices (disconnected graphs) join the lightest cluster.
Assignment partition_greedy_kcluster(const graph::Graph& graph, int parts,
                                     std::uint64_t seed);

}  // namespace massf::partition
