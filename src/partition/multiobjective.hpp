// Multi-objective edge-weight combination (paper §2.3).
//
// The network mapping problem has two opposing edge objectives: maximize
// cross-partition link *latency* (bigger conservative-sync lookahead) and
// minimize cross-partition *traffic* (fewer remote simulation events).
// Following Schloegel, Karypis & Kumar (Euro-Par'99) as adopted by the
// paper, each objective is first partitioned alone to obtain its optimal
// cut C_i, then the per-edge weights are combined as
//
//   w_combined(e) = p * w_latency(e)/C_latency
//                 + (1-p) * w_traffic(e)/C_traffic
//
// and the single-objective partitioner runs once more on the combined
// weights. p is the user-controllable latency priority (paper default 0.6,
// the "6:4 latency/traffic priority ratio").
//
// Latency enters as a *cut-minimization* weight: cutting a low-latency link
// must be expensive, so w_latency(e) is a decreasing function of the link
// latency (we use max_latency / latency, the standard reciprocal trick the
// DaSSF/MaSSF lineage applies).
#pragma once

#include <vector>

#include "partition/partition.hpp"

namespace massf::partition {

/// Inputs to the multi-objective combination: two parallel per-arc weight
/// arrays over the same graph structure.
struct ObjectiveWeights {
  /// Cut-cost for the latency objective (higher = worse to cut).
  std::vector<double> latency;
  /// Cut-cost for the traffic objective (estimated events on the link).
  std::vector<double> traffic;
};

/// Result of the multi-objective partition, including the per-objective
/// optimal cuts used for normalization (useful for reporting/ablation).
struct MultiObjectiveResult {
  PartitionResult partition;
  double latency_cut = 0;   // C_latency: cut of the latency-only partition
  double traffic_cut = 0;   // C_traffic: cut of the traffic-only partition
};

/// Run the paper's §2.3 algorithm: two single-objective partitions to learn
/// C_latency and C_traffic, then a final partition on the normalized
/// combination with latency priority `p` in [0,1]. If one objective is
/// degenerate (all-zero weights or zero optimal cut), the other is used
/// alone. Multi-constraint vertex weights pass through unchanged.
MultiObjectiveResult partition_multiobjective(const graph::Graph& graph,
                                              const ObjectiveWeights& weights,
                                              double latency_priority,
                                              const PartitionOptions& options);

/// Just the combined per-arc weights (exposed for tests/ablation): given
/// the two weight arrays and the two normalization cuts.
std::vector<double> combine_objectives(const ObjectiveWeights& weights,
                                       double latency_cut, double traffic_cut,
                                       double latency_priority);

}  // namespace massf::partition
