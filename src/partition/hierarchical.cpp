// Coarsen-once partitioning: exploit the domain tags hierarchical
// topologies carry instead of rediscovering the same clustering with
// O(levels · n) heavy-edge matching. Domains become quotient vertices in a
// single step; only domains too heavy for one block are split (BFS chunks
// of bounded weight, so chunks stay connected and the quotient partitioner
// retains room to balance).
#include <algorithm>
#include <tuple>

#include "partition/partition.hpp"
#include "util/error.hpp"

namespace massf::partition {

namespace {

using graph::ArcIndex;
using graph::VertexId;

/// Load of a weight vector relative to the per-part targets: max over
/// constraints of w_c / (total_c / parts). 1.0 = exactly one part's share.
double relative_load(const std::vector<double>& weight,
                     const std::vector<double>& target) {
  double load = 0;
  for (std::size_t c = 0; c < weight.size(); ++c)
    if (target[c] > 0) load = std::max(load, weight[c] / target[c]);
  return load;
}

}  // namespace

PartitionResult partition_hierarchical(const graph::Graph& graph,
                                       const std::vector<int>& domain_of,
                                       const PartitionOptions& options) {
  const VertexId n = graph.vertex_count();
  MASSF_REQUIRE(n > 0, "cannot partition an empty graph");
  MASSF_REQUIRE(domain_of.size() == static_cast<std::size_t>(n),
                "domain_of size must equal vertex count");
  MASSF_REQUIRE(options.parts >= 1, "parts must be >= 1");
  if (options.parts == 1) {
    PartitionResult result;
    result.assignment.assign(static_cast<std::size_t>(n), 0);
    result.edge_cut = 0;
    result.worst_balance = 1.0;
    return result;
  }

  int domains = 0;
  for (int d : domain_of) {
    MASSF_REQUIRE(d >= 0, "domain ids must be non-negative");
    domains = std::max(domains, d + 1);
  }

  const int ncon = graph.constraint_count();
  // Per-part target weight per constraint (the balance denominator).
  std::vector<double> target(static_cast<std::size_t>(ncon), 0.0);
  for (VertexId v = 0; v < n; ++v)
    for (int c = 0; c < ncon; ++c)
      target[static_cast<std::size_t>(c)] += graph.vertex_weight(v, c);
  for (double& t : target) t /= options.parts;

  // ---- Group formation: one group per domain, oversized domains split ----
  // A group heavier than half a part would wedge the quotient partitioner
  // (two such groups already overfill a block), so domains above that
  // threshold are carved into BFS chunks capped at half a part's share.
  constexpr double kMaxGroupLoad = 0.5;
  std::vector<int> group_of(static_cast<std::size_t>(n), -1);
  int groups = 0;
  {
    // Domain member lists (ascending vertex id within each domain).
    std::vector<std::int64_t> dom_off(static_cast<std::size_t>(domains) + 1, 0);
    for (int d : domain_of) dom_off[static_cast<std::size_t>(d) + 1]++;
    for (int i = 0; i < domains; ++i)
      dom_off[static_cast<std::size_t>(i) + 1] +=
          dom_off[static_cast<std::size_t>(i)];
    std::vector<VertexId> dom_vertices(static_cast<std::size_t>(n));
    {
      std::vector<std::int64_t> cursor(dom_off.begin(), dom_off.end() - 1);
      for (VertexId v = 0; v < n; ++v)
        dom_vertices[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(domain_of[static_cast<std::size_t>(
                v)])]++)] = v;
    }

    std::vector<double> weight(static_cast<std::size_t>(ncon));
    std::vector<VertexId> queue;
    for (int i = 0; i < domains; ++i) {
      const std::int64_t lo = dom_off[static_cast<std::size_t>(i)];
      const std::int64_t hi = dom_off[static_cast<std::size_t>(i) + 1];
      if (lo == hi) continue;  // empty domain id
      std::fill(weight.begin(), weight.end(), 0.0);
      for (std::int64_t k = lo; k < hi; ++k)
        for (int c = 0; c < ncon; ++c)
          weight[static_cast<std::size_t>(c)] += graph.vertex_weight(
              dom_vertices[static_cast<std::size_t>(k)], c);
      if (relative_load(weight, target) <= kMaxGroupLoad) {
        const int g = groups++;
        for (std::int64_t k = lo; k < hi; ++k)
          group_of[static_cast<std::size_t>(
              dom_vertices[static_cast<std::size_t>(k)])] = g;
        continue;
      }
      // Oversized: BFS chunks from the lowest-id unassigned vertex, closing
      // a chunk when the next vertex would push it past the cap. Chunks are
      // connected within the domain (modulo the domain itself being
      // disconnected, where each piece seeds its own BFS).
      std::fill(weight.begin(), weight.end(), 0.0);
      int chunk = groups++;
      bool chunk_empty = true;
      const auto close_chunk = [&]() {
        chunk = groups++;
        chunk_empty = true;
        std::fill(weight.begin(), weight.end(), 0.0);
      };
      for (std::int64_t k = lo; k < hi; ++k) {
        const VertexId seed = dom_vertices[static_cast<std::size_t>(k)];
        if (group_of[static_cast<std::size_t>(seed)] >= 0) continue;
        queue.clear();
        queue.push_back(seed);
        group_of[static_cast<std::size_t>(seed)] = -2;  // enqueued marker
        for (std::size_t head = 0; head < queue.size(); ++head) {
          const VertexId v = queue[head];
          double load_after = 0;
          for (int c = 0; c < ncon; ++c) {
            const auto ci = static_cast<std::size_t>(c);
            if (target[ci] > 0)
              load_after = std::max(
                  load_after,
                  (weight[ci] + graph.vertex_weight(v, c)) / target[ci]);
          }
          if (!chunk_empty && load_after > kMaxGroupLoad) close_chunk();
          group_of[static_cast<std::size_t>(v)] = chunk;
          chunk_empty = false;
          for (int c = 0; c < ncon; ++c)
            weight[static_cast<std::size_t>(c)] += graph.vertex_weight(v, c);
          for (ArcIndex a = graph.arc_begin(v); a < graph.arc_end(v); ++a) {
            const VertexId to = graph.arc_target(a);
            if (group_of[static_cast<std::size_t>(to)] != -1) continue;
            if (domain_of[static_cast<std::size_t>(to)] != i) continue;
            group_of[static_cast<std::size_t>(to)] = -2;
            queue.push_back(to);
          }
        }
      }
    }
  }

  // Not enough groups to fill the blocks (tiny graphs, or a single domain):
  // the quotient would be infeasible, so partition flat.
  if (groups < options.parts) return partition_multilevel(graph, options);

  // ---- Quotient graph ----
  graph::Graph quotient;
  {
    std::vector<double> qweights(
        static_cast<std::size_t>(groups) * static_cast<std::size_t>(ncon),
        0.0);
    for (VertexId v = 0; v < n; ++v) {
      const auto g =
          static_cast<std::size_t>(group_of[static_cast<std::size_t>(v)]);
      for (int c = 0; c < ncon; ++c)
        qweights[g * static_cast<std::size_t>(ncon) +
                 static_cast<std::size_t>(c)] += graph.vertex_weight(v, c);
    }
    // Aggregate inter-group edge weights with a sort (deterministic, no
    // hash-ordered state): each undirected edge contributes once.
    std::vector<std::tuple<int, int, double>> edges;
    for (VertexId v = 0; v < n; ++v) {
      const int gv = group_of[static_cast<std::size_t>(v)];
      for (ArcIndex a = graph.arc_begin(v); a < graph.arc_end(v); ++a) {
        const VertexId to = graph.arc_target(a);
        if (to <= v) continue;  // count each undirected edge once
        const int gt = group_of[static_cast<std::size_t>(to)];
        if (gv == gt) continue;
        edges.emplace_back(std::min(gv, gt), std::max(gv, gt),
                           graph.arc_weight(a));
      }
    }
    std::sort(edges.begin(), edges.end(),
              [](const auto& x, const auto& y) {
                return std::tie(std::get<0>(x), std::get<1>(x)) <
                       std::tie(std::get<0>(y), std::get<1>(y));
              });
    graph::GraphBuilder builder(ncon);
    for (int g = 0; g < groups; ++g)
      builder.add_vertex(std::span<const double>(
          qweights.data() + static_cast<std::size_t>(g) *
                                static_cast<std::size_t>(ncon),
          static_cast<std::size_t>(ncon)));
    for (std::size_t e = 0; e < edges.size();) {
      const int a = std::get<0>(edges[e]);
      const int b = std::get<1>(edges[e]);
      double w = 0;
      while (e < edges.size() && std::get<0>(edges[e]) == a &&
             std::get<1>(edges[e]) == b) {
        w += std::get<2>(edges[e]);
        ++e;
      }
      builder.add_edge(a, b, w);
    }
    quotient = builder.build();
  }

  PartitionResult coarse = partition_multilevel(quotient, options);

  PartitionResult result;
  result.assignment.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v)
    result.assignment[static_cast<std::size_t>(v)] =
        coarse.assignment[static_cast<std::size_t>(
            group_of[static_cast<std::size_t>(v)])];
  // Quality measured on the original graph, not the quotient — group
  // weights and aggregated edges make the quotient numbers identical
  // anyway, but the original-graph metrics are what callers compare
  // against other partitioners.
  result.edge_cut = edge_cut(graph, result.assignment);
  result.worst_balance =
      worst_balance_ratio(graph, result.assignment, options.parts);
  return result;
}

}  // namespace massf::partition
