#include "partition/coarsen.hpp"

#include <algorithm>
#include <numeric>

namespace massf::partition {

using graph::ArcIndex;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

CoarseGraph coarsen_once(const Graph& graph, Rng& rng) {
  const VertexId n = graph.vertex_count();
  constexpr VertexId kUnmatched = -1;
  std::vector<VertexId> match(static_cast<std::size_t>(n), kUnmatched);

  std::vector<VertexId> visit_order(static_cast<std::size_t>(n));
  std::iota(visit_order.begin(), visit_order.end(), 0);
  rng.shuffle(visit_order);

  // Heavy-edge matching.
  for (VertexId u : visit_order) {
    if (match[static_cast<std::size_t>(u)] != kUnmatched) continue;
    VertexId best = kUnmatched;
    double best_weight = -1;
    for (ArcIndex a = graph.arc_begin(u); a != graph.arc_end(u); ++a) {
      const VertexId v = graph.arc_target(a);
      if (v == u || match[static_cast<std::size_t>(v)] != kUnmatched) continue;
      if (graph.arc_weight(a) > best_weight) {
        best_weight = graph.arc_weight(a);
        best = v;
      }
    }
    if (best != kUnmatched) {
      match[static_cast<std::size_t>(u)] = best;
      match[static_cast<std::size_t>(best)] = u;
    } else {
      match[static_cast<std::size_t>(u)] = u;  // stays a singleton
    }
  }

  // Number coarse vertices: the smaller endpoint of each matched pair (or
  // the singleton itself) owns the coarse id, assigned in fine-id order so
  // the result is independent of the visit order above.
  std::vector<VertexId> fine_to_coarse(static_cast<std::size_t>(n), -1);
  VertexId coarse_count = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId mate = match[static_cast<std::size_t>(v)];
    if (mate >= v) fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count++;
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId mate = match[static_cast<std::size_t>(v)];
    if (mate < v)
      fine_to_coarse[static_cast<std::size_t>(v)] =
          fine_to_coarse[static_cast<std::size_t>(mate)];
  }

  // Contract.
  const int ncon = graph.constraint_count();
  GraphBuilder builder(ncon);
  std::vector<std::vector<double>> coarse_weights(
      static_cast<std::size_t>(coarse_count),
      std::vector<double>(static_cast<std::size_t>(ncon), 0.0));
  for (VertexId v = 0; v < n; ++v) {
    auto& w = coarse_weights[static_cast<std::size_t>(
        fine_to_coarse[static_cast<std::size_t>(v)])];
    const auto vw = graph.vertex_weights(v);
    for (int c = 0; c < ncon; ++c)
      w[static_cast<std::size_t>(c)] += vw[static_cast<std::size_t>(c)];
  }
  for (VertexId cv = 0; cv < coarse_count; ++cv)
    builder.add_vertex(coarse_weights[static_cast<std::size_t>(cv)]);

  // Emit each fine edge once from its smaller endpoint; GraphBuilder merges
  // the resulting parallel coarse edges by summing weights.
  for (VertexId u = 0; u < n; ++u) {
    for (ArcIndex a = graph.arc_begin(u); a != graph.arc_end(u); ++a) {
      const VertexId v = graph.arc_target(a);
      if (u >= v) continue;
      const VertexId cu = fine_to_coarse[static_cast<std::size_t>(u)];
      const VertexId cv = fine_to_coarse[static_cast<std::size_t>(v)];
      if (cu != cv) builder.add_edge(cu, cv, graph.arc_weight(a));
    }
  }

  return {builder.build(), std::move(fine_to_coarse)};
}

}  // namespace massf::partition
