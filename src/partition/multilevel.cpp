// Multilevel k-way partitioning driver: coarsen → initial partition →
// project back with rebalance + greedy refinement at every level.
#include <algorithm>

#include "partition/coarsen.hpp"
#include "partition/initial.hpp"
#include "partition/partition.hpp"
#include "partition/refine.hpp"
#include "util/log.hpp"

namespace massf::partition {

using graph::Graph;
using graph::VertexId;

PartitionResult partition_multilevel(const Graph& graph,
                                     const PartitionOptions& options) {
  MASSF_REQUIRE(options.parts >= 1, "parts must be >= 1");
  MASSF_REQUIRE(graph.vertex_count() >= options.parts,
                "graph has fewer vertices (" << graph.vertex_count()
                                             << ") than blocks ("
                                             << options.parts << ")");
  MASSF_REQUIRE(options.epsilon >= 0, "epsilon must be non-negative");

  Rng rng(options.seed);
  PartitionResult result;

  if (options.parts == 1) {
    result.assignment.assign(static_cast<std::size_t>(graph.vertex_count()),
                             0);
    result.edge_cut = 0;
    result.worst_balance = 1.0;
    return result;
  }

  // --- Coarsening phase -----------------------------------------------
  const VertexId stop_at = std::max<VertexId>(
      options.coarsen_to, static_cast<VertexId>(20 * options.parts));
  std::vector<CoarseGraph> hierarchy;  // hierarchy[i] coarsens level i graph
  const Graph* current = &graph;
  constexpr int kMaxLevels = 48;
  while (current->vertex_count() > stop_at &&
         static_cast<int>(hierarchy.size()) < kMaxLevels) {
    CoarseGraph next = coarsen_once(*current, rng);
    // A matching that barely shrinks the graph means coarsening has stalled
    // (e.g. a star graph); stop rather than spin.
    if (next.graph.vertex_count() >
        static_cast<VertexId>(0.95 * current->vertex_count()))
      break;
    hierarchy.push_back(std::move(next));
    current = &hierarchy.back().graph;
  }
  MASSF_LOG_DEBUG << "multilevel: " << hierarchy.size()
                  << " coarsening levels, coarsest has "
                  << current->vertex_count() << " vertices";

  // --- Initial partitioning at the coarsest level ----------------------
  const std::vector<double> fractions = uniform_fractions(options.parts);
  std::vector<double> epsilons = options.epsilon_per_constraint;
  if (epsilons.empty()) epsilons.assign(1, options.epsilon);
  MASSF_REQUIRE(epsilons.size() == 1 ||
                    epsilons.size() ==
                        static_cast<std::size_t>(graph.constraint_count()),
                "epsilon_per_constraint must match the constraint count");
  std::vector<double> tight_epsilons = epsilons;
  for (double& e : tight_epsilons) e *= 0.5;
  Assignment assignment = initial_partition(*current, options, rng);
  rebalance(*current, assignment, fractions, epsilons, rng);
  greedy_refine(*current, assignment, fractions, epsilons,
                options.refine_passes, rng);

  // --- Uncoarsening with refinement ------------------------------------
  for (std::size_t level = hierarchy.size(); level-- > 0;) {
    const Graph& fine =
        level == 0 ? graph : hierarchy[level - 1].graph;
    const std::vector<VertexId>& map = hierarchy[level].fine_to_coarse;
    Assignment projected(static_cast<std::size_t>(fine.vertex_count()));
    for (VertexId v = 0; v < fine.vertex_count(); ++v)
      projected[static_cast<std::size_t>(v)] =
          assignment[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])];
    assignment = std::move(projected);
    rebalance(fine, assignment, fractions, epsilons, rng);
    greedy_refine(fine, assignment, fractions, epsilons,
                  options.refine_passes, rng);
  }

  // Final polish: push balance below the tolerance (lumpy weights often
  // stay above it after gain-only refinement) by rebalancing against a
  // tighter target, then run a short refinement sweep to recover any cut
  // lost to the balancing moves.
  rebalance(graph, assignment, fractions, tight_epsilons, rng);
  greedy_refine(graph, assignment, fractions, epsilons,
                std::max(2, options.refine_passes / 2), rng);

  validate_assignment(graph, assignment, options.parts);
  result.edge_cut = edge_cut(graph, assignment);
  result.worst_balance = worst_balance_ratio(graph, assignment, options.parts);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace massf::partition
