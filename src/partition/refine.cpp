#include "partition/refine.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace massf::partition {

using graph::ArcIndex;
using graph::Graph;
using graph::VertexId;

namespace {

/// Shared bookkeeping for refinement/rebalance: per-block per-constraint
/// weights, per-block vertex counts, per-constraint totals and upper limits.
class BalanceState {
 public:
  BalanceState(const Graph& graph, const Assignment& assignment,
               const std::vector<double>& fractions,
               const std::vector<double>& epsilons)
      : graph_(graph),
        parts_(static_cast<int>(fractions.size())),
        ncon_(graph.constraint_count()),
        weights_(static_cast<std::size_t>(parts_ * ncon_), 0.0),
        counts_(static_cast<std::size_t>(parts_), 0),
        limits_(static_cast<std::size_t>(parts_ * ncon_), 0.0),
        totals_(static_cast<std::size_t>(ncon_), 0.0) {
    MASSF_REQUIRE(parts_ >= 1, "need at least one block");
    for (VertexId v = 0; v < graph.vertex_count(); ++v) {
      const int p = assignment[static_cast<std::size_t>(v)];
      ++counts_[static_cast<std::size_t>(p)];
      const auto vw = graph.vertex_weights(v);
      for (int c = 0; c < ncon_; ++c) {
        at(weights_, p, c) += vw[static_cast<std::size_t>(c)];
        totals_[static_cast<std::size_t>(c)] += vw[static_cast<std::size_t>(c)];
      }
    }
    MASSF_REQUIRE(epsilons.size() == 1 ||
                      epsilons.size() == static_cast<std::size_t>(ncon_),
                  "epsilons must have 1 or ncon entries");
    for (int p = 0; p < parts_; ++p)
      for (int c = 0; c < ncon_; ++c) {
        const double eps = epsilons.size() == 1
                               ? epsilons[0]
                               : epsilons[static_cast<std::size_t>(c)];
        at(limits_, p, c) = (1.0 + eps) *
                            fractions[static_cast<std::size_t>(p)] *
                            totals_[static_cast<std::size_t>(c)];
      }
  }

  int parts() const { return parts_; }
  int constraints() const { return ncon_; }
  double weight(int p, int c) const { return at(weights_, p, c); }
  double limit(int p, int c) const { return at(limits_, p, c); }
  double total(int c) const { return totals_[static_cast<std::size_t>(c)]; }
  int count(int p) const { return counts_[static_cast<std::size_t>(p)]; }

  /// True if moving v into block b keeps every constraint of b within its
  /// limit. Constraints with zero total weight are ignored.
  bool move_fits(VertexId v, int b) const {
    const auto vw = graph_.vertex_weights(v);
    for (int c = 0; c < ncon_; ++c) {
      if (total(c) <= 0) continue;
      if (weight(b, c) + vw[static_cast<std::size_t>(c)] > limit(b, c))
        return false;
    }
    return true;
  }

  /// Amount by which block p violates its limits, summed over constraints
  /// and normalized by each constraint total (0 when feasible).
  double overload(int p) const {
    double over = 0;
    for (int c = 0; c < ncon_; ++c) {
      if (total(c) <= 0) continue;
      over += std::max(0.0, weight(p, c) - limit(p, c)) / total(c);
    }
    return over;
  }

  /// Normalized load of block p: max over constraints of W(p,c)/limit(p,c).
  double pressure(int p) const {
    double worst = 0;
    for (int c = 0; c < ncon_; ++c) {
      if (total(c) <= 0 || limit(p, c) <= 0) continue;
      worst = std::max(worst, weight(p, c) / limit(p, c));
    }
    return worst;
  }

  void apply_move(VertexId v, int from, int to) {
    const auto vw = graph_.vertex_weights(v);
    for (int c = 0; c < ncon_; ++c) {
      at(weights_, from, c) -= vw[static_cast<std::size_t>(c)];
      at(weights_, to, c) += vw[static_cast<std::size_t>(c)];
    }
    --counts_[static_cast<std::size_t>(from)];
    ++counts_[static_cast<std::size_t>(to)];
  }

 private:
  double& at(std::vector<double>& m, int p, int c) {
    return m[static_cast<std::size_t>(p) * static_cast<std::size_t>(ncon_) +
             static_cast<std::size_t>(c)];
  }
  const double& at(const std::vector<double>& m, int p, int c) const {
    return m[static_cast<std::size_t>(p) * static_cast<std::size_t>(ncon_) +
             static_cast<std::size_t>(c)];
  }

  const Graph& graph_;
  int parts_;
  int ncon_;
  std::vector<double> weights_;
  std::vector<int> counts_;
  std::vector<double> limits_;
  std::vector<double> totals_;
};

/// Connectivity of v to each block under `assignment` (sparse: only blocks
/// adjacent to v are filled; `touched` lists them).
void connectivity(const Graph& graph, const Assignment& assignment,
                  VertexId v, std::vector<double>& link,
                  std::vector<int>& touched) {
  for (int p : touched) link[static_cast<std::size_t>(p)] = 0;
  touched.clear();
  for (ArcIndex a = graph.arc_begin(v); a != graph.arc_end(v); ++a) {
    const int p = assignment[static_cast<std::size_t>(graph.arc_target(a))];
    if (link[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
    link[static_cast<std::size_t>(p)] += graph.arc_weight(a);
  }
}

}  // namespace

std::vector<double> uniform_fractions(int parts) {
  MASSF_REQUIRE(parts >= 1, "parts must be >= 1");
  return std::vector<double>(static_cast<std::size_t>(parts),
                             1.0 / static_cast<double>(parts));
}

void greedy_refine(const Graph& graph, Assignment& assignment,
                   const std::vector<double>& fractions,
                   const std::vector<double>& epsilons, int passes,
                   Rng& rng) {
  const int parts = static_cast<int>(fractions.size());
  validate_assignment(graph, assignment, parts);
  if (parts == 1 || graph.vertex_count() == 0) return;

  BalanceState state(graph, assignment, fractions, epsilons);
  std::vector<double> link(static_cast<std::size_t>(parts), 0.0);
  std::vector<int> touched;
  std::vector<VertexId> order(static_cast<std::size_t>(graph.vertex_count()));
  std::iota(order.begin(), order.end(), 0);

  for (int pass = 0; pass < passes; ++pass) {
    rng.shuffle(order);
    int moves = 0;
    for (VertexId v : order) {
      const int from = assignment[static_cast<std::size_t>(v)];
      if (state.count(from) <= 1) continue;  // never empty a block
      connectivity(graph, assignment, v, link, touched);
      const double internal = link[static_cast<std::size_t>(from)];

      int best_to = -1;
      double best_gain = 0;
      for (int to : touched) {
        if (to == from) continue;
        const double gain = link[static_cast<std::size_t>(to)] - internal;
        // Strictly positive cut gain; ties broken toward the less loaded
        // block to nudge balance for free.
        const bool better =
            gain > best_gain ||
            (gain == best_gain && best_to >= 0 &&
             state.pressure(to) < state.pressure(best_to));
        if (gain > 0 && better && state.move_fits(v, to)) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to >= 0) {
        state.apply_move(v, from, best_to);
        assignment[static_cast<std::size_t>(v)] = best_to;
        ++moves;
      }
    }
    if (moves == 0) break;
  }
}

void rebalance(const Graph& graph, Assignment& assignment,
               const std::vector<double>& fractions,
               const std::vector<double>& epsilons, Rng& rng) {
  const int parts = static_cast<int>(fractions.size());
  validate_assignment(graph, assignment, parts);
  if (parts == 1 || graph.vertex_count() == 0) return;

  BalanceState state(graph, assignment, fractions, epsilons);
  std::vector<double> link(static_cast<std::size_t>(parts), 0.0);
  std::vector<int> touched;

  const std::int64_t move_budget =
      4 * static_cast<std::int64_t>(graph.vertex_count());
  std::int64_t moves = 0;

  while (moves < move_budget) {
    // Most overloaded block.
    int worst = -1;
    double worst_overload = 0;
    for (int p = 0; p < parts; ++p) {
      const double over = state.overload(p);
      if (over > worst_overload) {
        worst_overload = over;
        worst = p;
      }
    }
    if (worst < 0) break;  // feasible everywhere

    // Candidate vertices in the overloaded block; prefer low cut damage,
    // then heavier vertices (they fix the overload faster).
    VertexId best_vertex = -1;
    int best_target = -1;
    double best_score = std::numeric_limits<double>::infinity();
    for (VertexId v = 0; v < graph.vertex_count(); ++v) {
      if (assignment[static_cast<std::size_t>(v)] != worst) continue;
      if (state.count(worst) <= 1) break;
      connectivity(graph, assignment, v, link, touched);
      const double internal = link[static_cast<std::size_t>(worst)];
      // Try every block (not only adjacent ones: the overloaded block may
      // have no boundary to an underloaded one).
      for (int to = 0; to < parts; ++to) {
        if (to == worst) continue;
        // Moving into another overloaded block cannot help.
        if (state.overload(to) > 0) continue;
        const double damage = internal - link[static_cast<std::size_t>(to)];
        const double score =
            damage + 100.0 * state.pressure(to);  // prefer empty-ish targets
        if (score < best_score) {
          best_score = score;
          best_vertex = v;
          best_target = to;
        }
      }
    }
    if (best_vertex < 0) break;  // nothing movable

    state.apply_move(best_vertex, worst, best_target);
    assignment[static_cast<std::size_t>(best_vertex)] = best_target;
    ++moves;
    (void)rng;
  }
}

PartitionResult refine_from(const Graph& graph, Assignment assignment,
                            const PartitionOptions& options) {
  MASSF_REQUIRE(options.parts >= 1, "parts must be >= 1");
  validate_assignment(graph, assignment, options.parts);
  const std::vector<double> fractions = uniform_fractions(options.parts);
  const std::vector<double> epsilons =
      options.epsilon_per_constraint.empty()
          ? std::vector<double>{options.epsilon}
          : options.epsilon_per_constraint;
  Rng rng(mix_seed(options.seed, 0x1ec0de));

  rebalance(graph, assignment, fractions, epsilons, rng);
  greedy_refine(graph, assignment, fractions, epsilons, options.refine_passes,
                rng);

  PartitionResult result;
  result.edge_cut = edge_cut(graph, assignment);
  result.worst_balance = worst_balance_ratio(graph, assignment, options.parts);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace massf::partition
