#include "partition/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "graph/algorithms.hpp"
#include "util/rng.hpp"

namespace massf::partition {

using graph::ArcIndex;
using graph::Graph;
using graph::VertexId;

Assignment partition_random(const Graph& graph, int parts,
                            std::uint64_t seed) {
  MASSF_REQUIRE(parts >= 1, "parts must be >= 1");
  MASSF_REQUIRE(graph.vertex_count() >= parts,
                "fewer vertices than blocks");
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  Assignment assignment(n);
  for (std::size_t v = 0; v < n; ++v)
    assignment[v] = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(parts)));
  // Ensure no block is empty: claim one random distinct vertex per block.
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  for (int p = 0; p < parts; ++p)
    assignment[static_cast<std::size_t>(ids[static_cast<std::size_t>(p)])] = p;
  return assignment;
}

namespace {

/// Approximate pseudo-peripheral vertex: run BFS twice from a random start
/// and take the farthest vertex.
VertexId pseudo_peripheral(const Graph& graph, Rng& rng) {
  const VertexId n = graph.vertex_count();
  VertexId start = static_cast<VertexId>(
      rng.next_below(static_cast<std::uint64_t>(n)));
  for (int round = 0; round < 2; ++round) {
    const std::vector<int> dist = graph::bfs_distance(graph, start);
    VertexId farthest = start;
    int best = -1;
    for (VertexId v = 0; v < n; ++v)
      if (dist[static_cast<std::size_t>(v)] > best) {
        best = dist[static_cast<std::size_t>(v)];
        farthest = v;
      }
    start = farthest;
  }
  return start;
}

}  // namespace

Assignment partition_bfs_hierarchical(const Graph& graph, int parts,
                                      std::uint64_t seed) {
  MASSF_REQUIRE(parts >= 1, "parts must be >= 1");
  MASSF_REQUIRE(graph.vertex_count() >= parts, "fewer vertices than blocks");
  Rng rng(seed);
  const VertexId n = graph.vertex_count();

  // Global visit order: BFS from a pseudo-peripheral vertex, then any
  // remaining components in id order.
  std::vector<VertexId> order = graph::bfs_order(graph, pseudo_peripheral(graph, rng));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (VertexId v : order) seen[static_cast<std::size_t>(v)] = 1;
  for (VertexId v = 0; v < n; ++v) {
    if (seen[static_cast<std::size_t>(v)]) continue;
    for (VertexId u : graph::bfs_order(graph, v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        order.push_back(u);
      }
    }
  }

  const double total = std::max(graph.total_vertex_weight(0), 1e-12);
  const double per_block = total / parts;
  Assignment assignment(static_cast<std::size_t>(n), parts - 1);
  int block = 0;
  double accumulated = 0;
  std::size_t position = 0;
  for (VertexId v : order) {
    // Leave enough vertices for the remaining blocks.
    const std::size_t remaining_vertices = order.size() - position;
    const std::size_t remaining_blocks =
        static_cast<std::size_t>(parts - block);
    if (block < parts - 1 && accumulated >= per_block &&
        remaining_vertices > remaining_blocks - 1) {
      ++block;
      accumulated = 0;
    }
    assignment[static_cast<std::size_t>(v)] = block;
    accumulated += graph.vertex_weight(v, 0);
    ++position;
    // Hard stop: if only as many vertices remain as blocks, advance every
    // step so no block ends up empty.
    if (static_cast<std::size_t>(parts - 1 - block) >= order.size() - position &&
        block < parts - 1)
      ++block, accumulated = 0;
  }
  validate_assignment(graph, assignment, parts);
  return assignment;
}

Assignment partition_greedy_kcluster(const Graph& graph, int parts,
                                     std::uint64_t seed) {
  MASSF_REQUIRE(parts >= 1, "parts must be >= 1");
  MASSF_REQUIRE(graph.vertex_count() >= parts, "fewer vertices than blocks");
  Rng rng(seed);
  const VertexId n = graph.vertex_count();
  Assignment assignment(static_cast<std::size_t>(n), -1);

  // Distinct random seeds.
  std::vector<VertexId> ids(static_cast<std::size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  rng.shuffle(ids);
  // Per-cluster frontier: max-heap of (edge weight, target vertex).
  using Item = std::pair<double, VertexId>;
  std::vector<std::priority_queue<Item>> frontier(
      static_cast<std::size_t>(parts));

  auto claim = [&](int cluster, VertexId v) {
    assignment[static_cast<std::size_t>(v)] = cluster;
    for (ArcIndex a = graph.arc_begin(v); a != graph.arc_end(v); ++a) {
      const VertexId t = graph.arc_target(a);
      if (assignment[static_cast<std::size_t>(t)] < 0)
        frontier[static_cast<std::size_t>(cluster)].emplace(
            graph.arc_weight(a), t);
    }
  };

  for (int p = 0; p < parts; ++p)
    claim(p, ids[static_cast<std::size_t>(p)]);

  // Round-robin growth.
  VertexId assigned = static_cast<VertexId>(parts);
  while (assigned < n) {
    bool any_progress = false;
    for (int p = 0; p < parts && assigned < n; ++p) {
      auto& heap = frontier[static_cast<std::size_t>(p)];
      while (!heap.empty() &&
             assignment[static_cast<std::size_t>(heap.top().second)] >= 0)
        heap.pop();
      if (heap.empty()) continue;
      const VertexId v = heap.top().second;
      heap.pop();
      claim(p, v);
      ++assigned;
      any_progress = true;
    }
    if (!any_progress) break;  // all frontiers exhausted (disconnected)
  }

  // Disconnected leftovers join the cluster with the least vertices.
  if (assigned < n) {
    std::vector<int> counts(static_cast<std::size_t>(parts), 0);
    for (int p : assignment)
      if (p >= 0) ++counts[static_cast<std::size_t>(p)];
    for (VertexId v = 0; v < n; ++v) {
      if (assignment[static_cast<std::size_t>(v)] >= 0) continue;
      const auto lightest = static_cast<int>(
          std::min_element(counts.begin(), counts.end()) - counts.begin());
      assignment[static_cast<std::size_t>(v)] = lightest;
      ++counts[static_cast<std::size_t>(lightest)];
    }
  }
  validate_assignment(graph, assignment, parts);
  return assignment;
}

}  // namespace massf::partition
