// Initial partitioning of the coarsest graph.
//
// Recursive bisection: each bisection is greedy graph growing (GGGP) from
// several random seeds, keeping the best (cut, balance) candidate, followed
// by 2-way greedy refinement. Non-power-of-two block counts are handled by
// splitting k into floor(k/2)/ceil(k/2) with proportional weight targets.
#pragma once

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace massf::partition {

/// Partition `graph` into options.parts blocks from scratch (no multilevel).
/// Suitable for small graphs; the multilevel driver calls this at the
/// coarsest level.
Assignment initial_partition(const graph::Graph& graph,
                             const PartitionOptions& options, Rng& rng);

}  // namespace massf::partition
