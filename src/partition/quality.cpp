#include <algorithm>

#include "partition/partition.hpp"

namespace massf::partition {

double edge_cut(const graph::Graph& graph, const Assignment& assignment) {
  validate_assignment(graph, assignment,
                      assignment.empty()
                          ? 1
                          : *std::max_element(assignment.begin(),
                                              assignment.end()) +
                                1);
  double cut = 0;
  for (graph::VertexId u = 0; u < graph.vertex_count(); ++u) {
    for (graph::ArcIndex a = graph.arc_begin(u); a != graph.arc_end(u); ++a) {
      const graph::VertexId v = graph.arc_target(a);
      if (u < v && assignment[static_cast<std::size_t>(u)] !=
                       assignment[static_cast<std::size_t>(v)])
        cut += graph.arc_weight(a);
    }
  }
  return cut;
}

std::vector<double> block_weights(const graph::Graph& graph,
                                  const Assignment& assignment, int parts,
                                  int constraint) {
  validate_assignment(graph, assignment, parts);
  std::vector<double> weights(static_cast<std::size_t>(parts), 0.0);
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v)
    weights[static_cast<std::size_t>(
        assignment[static_cast<std::size_t>(v)])] +=
        graph.vertex_weight(v, constraint);
  return weights;
}

double balance_ratio(const graph::Graph& graph, const Assignment& assignment,
                     int parts, int constraint) {
  const std::vector<double> weights =
      block_weights(graph, assignment, parts, constraint);
  double total = 0, peak = 0;
  for (double w : weights) {
    total += w;
    peak = std::max(peak, w);
  }
  if (total <= 0) return 0;
  return peak / (total / parts);
}

double worst_balance_ratio(const graph::Graph& graph,
                           const Assignment& assignment, int parts) {
  double worst = 0;
  for (int c = 0; c < graph.constraint_count(); ++c)
    worst = std::max(worst, balance_ratio(graph, assignment, parts, c));
  return worst;
}

void validate_assignment(const graph::Graph& graph,
                         const Assignment& assignment, int parts) {
  MASSF_REQUIRE(parts >= 1, "parts must be >= 1");
  MASSF_REQUIRE(assignment.size() ==
                    static_cast<std::size_t>(graph.vertex_count()),
                "assignment size " << assignment.size()
                                   << " != vertex count "
                                   << graph.vertex_count());
  for (std::size_t v = 0; v < assignment.size(); ++v)
    MASSF_REQUIRE(assignment[v] >= 0 && assignment[v] < parts,
                  "vertex " << v << " assigned to invalid block "
                            << assignment[v]);
}

std::int64_t boundary_size(const graph::Graph& graph,
                           const Assignment& assignment) {
  std::int64_t count = 0;
  for (graph::VertexId u = 0; u < graph.vertex_count(); ++u) {
    for (graph::VertexId v : graph.neighbors(u)) {
      if (assignment[static_cast<std::size_t>(u)] !=
          assignment[static_cast<std::size_t>(v)]) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace massf::partition
