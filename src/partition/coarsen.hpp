// Graph coarsening by heavy-edge matching (the first multilevel phase).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace massf::partition {

/// One coarsening step: the contracted graph plus the projection map.
struct CoarseGraph {
  graph::Graph graph;
  /// fine_to_coarse[v] = coarse vertex that fine vertex v collapsed into.
  std::vector<graph::VertexId> fine_to_coarse;
};

/// Contract a maximal matching computed by the heavy-edge heuristic:
/// vertices are visited in random order and matched to the unmatched
/// neighbor connected by the heaviest edge. Vertex weights are summed
/// component-wise; parallel coarse edges are merged by summing weights.
CoarseGraph coarsen_once(const graph::Graph& graph, Rng& rng);

}  // namespace massf::partition
