// Public types for the graph-partitioning subsystem.
//
// The partitioner is a from-scratch multilevel k-way implementation in the
// style of METIS (coarsen by heavy-edge matching, partition the coarsest
// graph by recursive bisection with greedy growing, project back with
// boundary refinement). It supports the two capabilities the paper depends
// on: multiple balance constraints per vertex (computation + memory, or one
// constraint per PROFILE time segment) and — via
// partition::combine_objectives — the Schloegel–Karypis–Kumar
// multi-objective edge-weight combination.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace massf::partition {

/// part[v] = block id in [0, k) for every vertex v.
using Assignment = std::vector<int>;

/// Tuning knobs for the multilevel partitioner. Defaults are sensible for
/// the network graphs in this repository (tens to thousands of vertices).
struct PartitionOptions {
  /// Number of blocks (simulation engine nodes). Must be >= 1.
  int parts = 2;
  /// Balance tolerance: max block weight may not exceed
  /// (1 + epsilon) * total/parts. METIS's default is ~3%; network graphs
  /// are lumpy, so we default a little looser.
  double epsilon = 0.05;
  /// Optional per-constraint tolerances overriding `epsilon` (size must be
  /// the graph's constraint count when non-empty). Lets soft constraints
  /// (memory when RAM is plentiful, PROFILE time segments) be balanced
  /// loosely without relaxing the computation constraint.
  std::vector<double> epsilon_per_constraint;
  /// Stop coarsening when the graph has at most max(coarsen_to,
  /// 20*parts) vertices.
  int coarsen_to = 120;
  /// Maximum boundary-refinement passes per uncoarsening level.
  int refine_passes = 8;
  /// Independent initial-partitioning trials at the coarsest level; the
  /// best cut wins.
  int initial_trials = 8;
  /// Master seed; the partitioner is deterministic given the seed.
  std::uint64_t seed = 1;
};

/// Outcome of a partitioning run.
struct PartitionResult {
  Assignment assignment;
  /// Total weight of cut edges under the graph's arc weights.
  double edge_cut = 0;
  /// Worst balance ratio over all constraints:
  /// max_{c,p} W(p,c) / (total_c / parts). 1.0 is perfect.
  double worst_balance = 0;
};

/// Multilevel k-way partitioning (the main entry point).
/// Requires graph.vertex_count() >= options.parts.
PartitionResult partition_multilevel(const graph::Graph& graph,
                                     const PartitionOptions& options);

/// Coarsen-once partitioning for domain-tagged graphs (million-node scale):
/// collapse each domain (`domain_of[v]`, dense ids as produced by
/// topology::Network::domain_of_nodes) to one quotient vertex — splitting
/// oversized domains into bounded-weight connected chunks first — then run
/// the multilevel partitioner on the quotient and place whole chunks. The
/// multilevel machinery never sees more vertices than domains + split
/// chunks, so wall time and memory scale with the domain structure rather
/// than with n. Falls back to partition_multilevel when the graph carries
/// no usable domain structure (one domain, or fewer groups than parts).
/// Reported edge_cut / worst_balance are measured on the original graph.
PartitionResult partition_hierarchical(const graph::Graph& graph,
                                       const std::vector<int>& domain_of,
                                       const PartitionOptions& options);

// ---------------------------------------------------------------------------
// Quality metrics (shared by the partitioner, tests and benches).
// ---------------------------------------------------------------------------

/// Sum of arc weights crossing blocks (each undirected edge counted once).
double edge_cut(const graph::Graph& graph, const Assignment& assignment);

/// Block weights for one constraint: result[p] = sum of vertex weight c in p.
std::vector<double> block_weights(const graph::Graph& graph,
                                  const Assignment& assignment, int parts,
                                  int constraint);

/// max_p W(p,c) / (total_c/parts) for constraint c; 0 if total_c == 0.
double balance_ratio(const graph::Graph& graph, const Assignment& assignment,
                     int parts, int constraint);

/// Worst balance_ratio over all constraints.
double worst_balance_ratio(const graph::Graph& graph,
                           const Assignment& assignment, int parts);

/// Throw std::invalid_argument unless the assignment is complete (every
/// vertex has a block in [0, parts)).
void validate_assignment(const graph::Graph& graph,
                         const Assignment& assignment, int parts);

/// Number of vertices with at least one neighbor in another block.
std::int64_t boundary_size(const graph::Graph& graph,
                           const Assignment& assignment);

}  // namespace massf::partition
