// Boundary refinement and rebalancing for k-way partitions.
//
// Both routines support multi-constraint vertex weights and non-uniform
// block target fractions (needed by recursive bisection when the block count
// is odd). They are deterministic given the Rng state.
#pragma once

#include <vector>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace massf::partition {

/// Greedy k-way boundary refinement (METIS-style hill climbing). Repeatedly
/// moves boundary vertices to the neighboring block with the best positive
/// cut gain, subject to every balance constraint:
///   W(b,c) + w(v,c) <= (1+eps_c) * fractions[b] * total_c,
/// where eps_c is epsilons[c] (or epsilons[0] broadcast to every
/// constraint when epsilons has a single entry). `fractions` has one entry
/// per block and should sum to ~1. Stops after `passes` sweeps or when a
/// sweep makes no move.
void greedy_refine(const graph::Graph& graph, Assignment& assignment,
                   const std::vector<double>& fractions,
                   const std::vector<double>& epsilons, int passes, Rng& rng);

/// Force balance feasibility (best effort): while a block exceeds its limit
/// for some constraint, move the boundary vertex with the least cut damage
/// out of it into the most underloaded feasible block. Never empties a
/// block. Bounded work (at most 4n moves) so it cannot loop forever.
void rebalance(const graph::Graph& graph, Assignment& assignment,
               const std::vector<double>& fractions,
               const std::vector<double>& epsilons, Rng& rng);

/// Uniform fractions vector (1/parts each).
std::vector<double> uniform_fractions(int parts);

/// Incremental repartition: refine an *existing* assignment under (possibly
/// drifted) vertex/arc weights instead of partitioning from scratch. The
/// current partition is the seed — Schloegel & Karypis' adaptive
/// repartitioning insight that when load drifts, a diffusion/boundary-
/// refinement step from the live partition costs a migration volume
/// proportional to the drift, while a fresh multilevel partition would
/// scatter vertices arbitrarily and migrate most of the graph. Runs
/// rebalance() (restore feasibility under the new weights) followed by
/// greedy_refine() (recover cut quality along the new boundary), both
/// seeded deterministically from options.seed. Only `parts`, `epsilon`/
/// `epsilon_per_constraint`, `refine_passes`, and `seed` of the options are
/// used. Returns the refined assignment with its edge cut and worst
/// balance.
PartitionResult refine_from(const graph::Graph& graph, Assignment assignment,
                            const PartitionOptions& options);

}  // namespace massf::partition
