#include "traffic/gridnpb.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace massf::traffic {

std::vector<int> TaskGraph::roots() const {
  std::vector<int> out;
  for (std::size_t t = 0; t < tasks.size(); ++t)
    if (tasks[t].inputs_required == 0) out.push_back(static_cast<int>(t));
  return out;
}

double TaskGraph::total_bytes() const {
  double total = 0;
  for (const WorkflowTask& t : tasks)
    for (const auto& [succ, bytes] : t.outputs) total += bytes;
  return total;
}

double TaskGraph::total_compute() const {
  double total = 0;
  for (const WorkflowTask& t : tasks) total += t.compute_s;
  return total;
}

namespace {

/// Validate DAG shape: successor indices in range and strictly increasing
/// edge direction (guarantees acyclicity); input counts consistent.
void validate_graph(const TaskGraph& graph) {
  std::vector<int> in_degree(graph.tasks.size(), 0);
  for (std::size_t t = 0; t < graph.tasks.size(); ++t) {
    for (const auto& [succ, bytes] : graph.tasks[t].outputs) {
      MASSF_REQUIRE(succ >= 0 &&
                        static_cast<std::size_t>(succ) < graph.tasks.size(),
                    "workflow successor out of range");
      MASSF_REQUIRE(static_cast<std::size_t>(succ) > t,
                    "workflow edges must point forward (acyclic)");
      MASSF_REQUIRE(bytes > 0, "workflow edge bytes must be positive");
      ++in_degree[static_cast<std::size_t>(succ)];
    }
  }
  for (std::size_t t = 0; t < graph.tasks.size(); ++t)
    MASSF_REQUIRE(graph.tasks[t].inputs_required == in_degree[t],
                  "task " << t << " expects " << graph.tasks[t].inputs_required
                          << " inputs but has in-degree " << in_degree[t]);
}

/// Mutable per-run workflow state shared by one install's endpoints.
/// arrived[t] is only touched on task t's host's engine, so sharing the
/// struct across endpoints stays race-free in threaded mode.
struct RunState {
  TaskGraph graph;
  std::vector<int> arrived;  // inputs received so far, per task
  bool reliable = false;
};

class WorkflowEndpoint : public emu::AppEndpoint {
 public:
  WorkflowEndpoint(std::shared_ptr<RunState> state, NodeId host)
      : state_(std::move(state)), host_(host) {}

  void start(emu::AppApi& api) override {
    for (int root : state_->graph.roots())
      if (state_->graph.tasks[static_cast<std::size_t>(root)].host == host_)
        fire(api, root);
  }

  void receive(emu::AppApi& api, const emu::AppMessage& message) override {
    const int task_index = message.tag;
    MASSF_REQUIRE(task_index >= 0 &&
                      static_cast<std::size_t>(task_index) <
                          state_->graph.tasks.size(),
                  "workflow message with unknown task tag");
    const WorkflowTask& task =
        state_->graph.tasks[static_cast<std::size_t>(task_index)];
    MASSF_REQUIRE(task.host == host_,
                  "workflow input delivered to the wrong host");
    if (++state_->arrived[static_cast<std::size_t>(task_index)] ==
        task.inputs_required)
      fire(api, task_index);
  }

  /// Timer tag = task index: the task's compute phase finished.
  void on_timer(emu::AppApi& api, std::int64_t tag) override {
    const WorkflowTask& task =
        state_->graph.tasks[static_cast<std::size_t>(tag)];
    for (const auto& [succ, bytes] : task.outputs) {
      const WorkflowTask& successor =
          state_->graph.tasks[static_cast<std::size_t>(succ)];
      if (successor.host == host_) {
        // Co-located tasks hand data over in memory — no network traffic;
        // the input still counts.
        if (++state_->arrived[static_cast<std::size_t>(succ)] ==
            successor.inputs_required)
          fire(api, succ);
      } else if (state_->reliable) {
        api.send_reliable(successor.host, bytes, succ);
      } else {
        api.send(successor.host, bytes, succ);
      }
    }
  }

  /// Each endpoint owns the arrived-input counts of its host's tasks (the
  /// shared RunState is partitioned by host, matching the race-freedom
  /// rule), so together the endpoints serialize the whole workflow state.
  void save_state(std::vector<std::uint64_t>& out) const override {
    for (std::size_t t = 0; t < state_->graph.tasks.size(); ++t)
      if (state_->graph.tasks[t].host == host_)
        out.push_back(static_cast<std::uint64_t>(state_->arrived[t]));
  }

  void load_state(const std::vector<std::uint64_t>& in) override {
    std::size_t i = 0;
    for (std::size_t t = 0; t < state_->graph.tasks.size(); ++t)
      if (state_->graph.tasks[t].host == host_) {
        MASSF_REQUIRE(i < in.size(), "workflow snapshot state truncated");
        state_->arrived[t] = static_cast<int>(in[i++]);
      }
    MASSF_REQUIRE(i == in.size(),
                  "workflow snapshot state has extra words — the snapshot "
                  "was taken with a different task graph");
  }

 private:
  void fire(emu::AppApi& api, int task_index) {
    api.set_timer(
        state_->graph.tasks[static_cast<std::size_t>(task_index)].compute_s,
        task_index);
  }

  std::shared_ptr<RunState> state_;
  NodeId host_;
};

/// Helper collecting tasks during graph construction.
class GraphBuilder {
 public:
  explicit GraphBuilder(const std::vector<NodeId>& hosts) : hosts_(hosts) {
    MASSF_REQUIRE(hosts.size() >= 2, "workflow needs >= 2 hosts");
  }

  int add_task(int host_index, double compute_s) {
    WorkflowTask task;
    task.host = hosts_[static_cast<std::size_t>(host_index) % hosts_.size()];
    task.compute_s = compute_s;
    graph_.tasks.push_back(task);
    return static_cast<int>(graph_.tasks.size() - 1);
  }

  void add_edge(int from, int to, double bytes) {
    MASSF_REQUIRE(from < to, "workflow edges must point forward");
    graph_.tasks[static_cast<std::size_t>(from)].outputs.emplace_back(to,
                                                                      bytes);
    ++graph_.tasks[static_cast<std::size_t>(to)].inputs_required;
  }

  TaskGraph take() {
    validate_graph(graph_);
    return std::move(graph_);
  }

  TaskGraph& graph() { return graph_; }

 private:
  const std::vector<NodeId>& hosts_;
  TaskGraph graph_;
};

/// Append one benchmark's tasks to `builder`; returns (entry tasks, exit
/// tasks) indices for chaining.
struct Ports {
  std::vector<int> entries;
  std::vector<int> exits;
};

Ports append_helical_chain(GraphBuilder& builder, const GridNpbParams& params,
                           Rng& rng, int host_offset) {
  // 9 solver tasks in a chain (BT, SP, LU repeated 3x), hopping hosts.
  Ports ports;
  int prev = -1;
  for (int i = 0; i < 9; ++i) {
    const double compute =
        params.unit_compute_s * rng.next_double(0.6, 1.8);
    const int task = builder.add_task(host_offset + i * 2, compute);
    if (prev >= 0) {
      const double bytes =
          params.unit_bytes * (i % 3 == 0 ? 1.0 : 0.3) *
          rng.next_double(0.7, 1.3);
      builder.add_edge(prev, task, bytes);
    } else {
      ports.entries.push_back(task);
    }
    prev = task;
  }
  ports.exits.push_back(prev);
  return ports;
}

Ports append_visualization_pipeline(GraphBuilder& builder,
                                    const GridNpbParams& params, Rng& rng,
                                    int host_offset) {
  // 3 frames × (BT → MG → FT) with frame sequencing on the first stage.
  Ports ports;
  int prev_bt = -1;
  std::vector<int> fts;
  for (int frame = 0; frame < 3; ++frame) {
    const int bt = builder.add_task(host_offset,
                                    params.unit_compute_s *
                                        rng.next_double(1.2, 2.0));
    const int mg = builder.add_task(host_offset + 3,
                                    params.unit_compute_s *
                                        rng.next_double(0.4, 0.8));
    const int ft = builder.add_task(host_offset + 6,
                                    params.unit_compute_s *
                                        rng.next_double(0.8, 1.2));
    if (prev_bt >= 0)
      builder.add_edge(prev_bt, bt, params.unit_bytes * 0.1);
    else
      ports.entries.push_back(bt);
    builder.add_edge(bt, mg, params.unit_bytes * 1.6);
    builder.add_edge(mg, ft, params.unit_bytes * 0.8);
    prev_bt = bt;
    fts.push_back(ft);
  }
  // FT frames feed a visualization collector.
  const int collector = builder.add_task(
      host_offset + 8, params.unit_compute_s * 0.5);
  for (int ft : fts)
    builder.add_edge(ft, collector, params.unit_bytes * 0.4);
  ports.exits.push_back(collector);
  return ports;
}

Ports append_mixed_bag(GraphBuilder& builder, const GridNpbParams& params,
                       Rng& rng, int host_offset) {
  // Three independent chains of different lengths/weights joined by a
  // report task — deliberately lopsided.
  Ports ports;
  static constexpr int kChainLength[3] = {2, 3, 4};
  static constexpr double kChainWeight[3] = {2.5, 1.0, 0.4};
  std::vector<int> tails;
  for (int chain = 0; chain < 3; ++chain) {
    int prev = -1;
    for (int i = 0; i < kChainLength[chain]; ++i) {
      const double compute = params.unit_compute_s * kChainWeight[chain] *
                             rng.next_double(0.5, 1.5);
      const int task =
          builder.add_task(host_offset + chain * 3 + i, compute);
      if (prev >= 0)
        builder.add_edge(prev, task,
                         params.unit_bytes * kChainWeight[chain] *
                             rng.next_double(0.5, 1.5));
      else
        ports.entries.push_back(task);
      prev = task;
    }
    tails.push_back(prev);
  }
  const int report =
      builder.add_task(host_offset + 1, params.unit_compute_s * 0.3);
  for (int tail : tails)
    builder.add_edge(tail, report, params.unit_bytes * 0.2);
  ports.exits.push_back(report);
  return ports;
}

TaskGraph build_single(const std::vector<NodeId>& hosts,
                       const GridNpbParams& params,
                       Ports (*append)(GraphBuilder&, const GridNpbParams&,
                                       Rng&, int)) {
  GraphBuilder builder(hosts);
  Rng rng(params.seed);
  append(builder, params, rng, 0);
  return builder.take();
}

}  // namespace

TaskGraph make_helical_chain(const std::vector<NodeId>& hosts,
                             const GridNpbParams& params) {
  return build_single(hosts, params, append_helical_chain);
}

TaskGraph make_visualization_pipeline(const std::vector<NodeId>& hosts,
                                      const GridNpbParams& params) {
  return build_single(hosts, params, append_visualization_pipeline);
}

TaskGraph make_mixed_bag(const std::vector<NodeId>& hosts,
                         const GridNpbParams& params) {
  return build_single(hosts, params, append_mixed_bag);
}

TaskGraph make_gridnpb_graph(const std::vector<NodeId>& hosts,
                             const GridNpbParams& params) {
  MASSF_REQUIRE(params.rounds >= 1, "need at least one round");
  GraphBuilder builder(hosts);
  Rng rng(params.seed);

  std::vector<int> previous_exits;
  for (int round = 0; round < params.rounds; ++round) {
    // Offset host assignment each round so the hot tasks wander across the
    // network over time — the load-variation behavior Figure 2 shows.
    const int shift = round * 5;
    Ports hc = append_helical_chain(builder, params, rng, shift);
    Ports vp = append_visualization_pipeline(builder, params, rng, shift + 7);
    Ports mb = append_mixed_bag(builder, params, rng, shift + 13);

    std::vector<int> entries;
    for (const Ports& p : {hc, vp, mb})
      entries.insert(entries.end(), p.entries.begin(), p.entries.end());

    if (!previous_exits.empty()) {
      // Chain rounds: a tiny barrier task joins the previous round's exits
      // and releases this round's entries. Entries must stay *after* the
      // barrier in index order — they already are, because the barrier was
      // appended in the previous iteration.
      for (int exit_task : previous_exits)
        for (int entry : entries)
          builder.add_edge(exit_task, entry, 2048);
    }
    previous_exits.clear();
    for (const Ports& p : {hc, vp, mb})
      previous_exits.insert(previous_exits.end(), p.exits.begin(),
                            p.exits.end());
  }
  return builder.take();
}

WorkflowApp::WorkflowApp(TaskGraph graph, double nominal_duration,
                         bool reliable)
    : graph_(std::move(graph)),
      nominal_duration_(nominal_duration),
      reliable_(reliable) {
  validate_graph(graph_);
  MASSF_REQUIRE(nominal_duration_ > 0, "duration must be positive");
}

void WorkflowApp::install(emu::Emulator& emulator) const {
  auto state = std::make_shared<RunState>();
  state->graph = graph_;
  state->arrived.assign(graph_.tasks.size(), 0);
  state->reliable = reliable_;

  std::vector<char> installed(
      static_cast<std::size_t>(emulator.network().node_count()), 0);
  for (const WorkflowTask& task : graph_.tasks) {
    if (installed[static_cast<std::size_t>(task.host)]) continue;
    installed[static_cast<std::size_t>(task.host)] = 1;
    emulator.install_endpoint(
        task.host, std::make_unique<WorkflowEndpoint>(state, task.host));
  }
}

std::vector<NodeId> WorkflowApp::injection_points() const {
  std::vector<NodeId> hosts;
  for (const WorkflowTask& task : graph_.tasks)
    if (std::find(hosts.begin(), hosts.end(), task.host) == hosts.end())
      hosts.push_back(task.host);
  return hosts;
}

WorkflowApp make_gridnpb(const std::vector<NodeId>& hosts,
                         const GridNpbParams& params) {
  TaskGraph graph = make_gridnpb_graph(hosts, params);
  // Nominal duration: per-round critical path is roughly the helical chain
  // (9 tasks) at the mean task weight, plus transfer slack.
  const double nominal =
      params.rounds * 9.5 * params.unit_compute_s * 1.3 + 60.0;
  return WorkflowApp(std::move(graph), nominal, params.reliable);
}

}  // namespace massf::traffic
