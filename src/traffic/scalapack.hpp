// ScaLapack-like foreground application model.
//
// The paper runs ScaLAPACK solving a 3000×3000 system on 10 nodes over
// MPICH-G for ~10 minutes. What matters for the load-balance study is its
// *communication structure*: a blocked right-looking LU — each iteration
// the panel owner broadcasts its panel to every peer, peers apply updates
// (compute), exchange trailing-matrix pieces with their ring neighbor, and
// acknowledge to the owner, which then advances the iteration. Traffic is
// regular and evenly spread across the process grid — exactly why the
// paper finds PLACE's even all-to-all prediction nearly optimal for it
// (§4.2.1).
//
// Message sizes shrink as the factorization proceeds ((N-k·nb) rows left),
// and compute time per iteration shrinks quadratically, matching the real
// algorithm's profile.
#pragma once

#include <cstdint>

#include "traffic/workload.hpp"

namespace massf::traffic {

struct ScalapackParams {
  int matrix_n = 3000;     // problem size (N×N)
  int block_nb = 100;      // panel width
  /// Byte-scale knob: fraction of the true 8-byte-double volumes to put on
  /// the wire (keeps event counts laptop-scale; identical across mapping
  /// approaches so comparisons are unaffected).
  double size_scale = 0.08;
  /// Total modeled compute time across the run (distributed per iteration
  /// proportionally to the true (N-k·nb)² flop profile). Tuned so the whole
  /// app runs ~10 simulated minutes like the paper's.
  double total_compute_s = 420;
  std::uint64_t seed = 11;
  /// Send every protocol message via the reliable layer: the factorization
  /// completes across transient faults instead of deadlocking on a lost
  /// panel/ack (a lost control message stalls the whole iteration ring).
  bool reliable = false;
};

class ScalapackApp : public Workload {
 public:
  /// `hosts` = the 10 (or any >=2) process hosts, rank order = vector order.
  ScalapackApp(std::vector<NodeId> hosts, ScalapackParams params);

  void install(emu::Emulator& emulator) const override;
  std::vector<NodeId> injection_points() const override { return hosts_; }
  double duration() const override;

  int iterations() const;
  double panel_bytes(int iteration) const;
  double update_bytes(int iteration) const;
  double compute_seconds(int iteration) const;

 private:
  std::vector<NodeId> hosts_;
  ScalapackParams params_;
};

}  // namespace massf::traffic
