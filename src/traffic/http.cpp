#include "traffic/http.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

#include "util/rng.hpp"

namespace massf::traffic {

namespace {

// Tag layout: kTagGet+session for requests, kTagResponse+session for the
// matching responses (session = index of the client's server list).
constexpr int kTagGet = 100000;
constexpr int kTagResponse = 200000;

/// Client endpoint driving one independent browsing session per assigned
/// server: request → (wait for response) → think → request ...
/// A host that was drawn as the client of several servers runs all those
/// sessions concurrently from one endpoint.
class HttpClient : public emu::AppEndpoint {
 public:
  HttpClient(std::vector<NodeId> servers, const HttpParams& params,
             std::uint64_t seed)
      : servers_(std::move(servers)), params_(params), rng_(seed) {}

  void start(emu::AppApi& api) override {
    // Staggered starts desynchronize the session population.
    for (std::size_t session = 0; session < servers_.size(); ++session)
      arm(api, session, rng_.next_double(0, params_.think_time_s));
  }

  void receive(emu::AppApi& api, const emu::AppMessage& message) override {
    if (message.tag < kTagResponse) return;
    const auto session = static_cast<std::size_t>(message.tag - kTagResponse);
    if (session >= servers_.size()) return;
    if (api.now() >= params_.duration_s) return;  // session over
    arm(api, session, rng_.next_exponential(params_.think_time_s));
  }

  /// Timer tag = session index: the think time elapsed, issue the GET.
  void on_timer(emu::AppApi& api, std::int64_t tag) override {
    if (api.now() >= params_.duration_s) return;
    const auto session = static_cast<std::size_t>(tag);
    api.send(servers_[session], params_.get_bytes,
             kTagGet + static_cast<int>(session));
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    for (std::uint64_t word : rng_.state()) out.push_back(word);
  }

  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == 4,
                  "HTTP client snapshot state must be 4 RNG words");
    rng_.set_state({in[0], in[1], in[2], in[3]});
  }

 private:
  void arm(emu::AppApi& api, std::size_t session, double delay) {
    api.set_timer(delay, static_cast<std::int64_t>(session));
  }

  std::vector<NodeId> servers_;
  HttpParams params_;
  Rng rng_;
};

/// Server endpoint: GET → heavy-tailed response to the requester.
class HttpServer : public emu::AppEndpoint {
 public:
  HttpServer(const HttpParams& params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  void receive(emu::AppApi& api, const emu::AppMessage& message) override {
    if (message.tag < kTagGet || message.tag >= kTagResponse) return;
    const int session = message.tag - kTagGet;
    // Pareto with mean == request_size: scale = mean*(shape-1)/shape.
    const double scale =
        params_.request_size_bytes * (params_.pareto_shape - 1.0) /
        params_.pareto_shape;
    double bytes = rng_.next_pareto(params_.pareto_shape, scale);
    // Cap the tail so one flow cannot dominate an entire run.
    bytes = std::min(bytes, 50.0 * params_.request_size_bytes);
    api.send(message.src, bytes, kTagResponse + session);
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    for (std::uint64_t word : rng_.state()) out.push_back(word);
  }

  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == 4,
                  "HTTP server snapshot state must be 4 RNG words");
    rng_.set_state({in[0], in[1], in[2], in[3]});
  }

 private:
  HttpParams params_;
  Rng rng_;
};

}  // namespace

HttpBackground::HttpBackground(const topology::Network& network,
                               HttpParams params,
                               std::vector<NodeId> excluded)
    : params_(params) {
  MASSF_REQUIRE(params_.server_number >= 1, "need at least one server");
  MASSF_REQUIRE(params_.clients_per_server >= 1,
                "need at least one client per server");
  Rng rng(params_.seed);
  std::vector<NodeId> hosts;
  for (NodeId h : network.hosts())
    if (std::find(excluded.begin(), excluded.end(), h) == excluded.end())
      hosts.push_back(h);
  MASSF_REQUIRE(hosts.size() >= 2,
                "network needs at least two non-excluded hosts");
  rng.shuffle(hosts);

  const int servers =
      std::min<int>(params_.server_number,
                    static_cast<int>(hosts.size()) / 2);
  // Distribute the total session population across servers by Zipf
  // popularity (rank 0 = most popular), keeping the configured average of
  // clients_per_server sessions per server.
  const int total_sessions = servers * params_.clients_per_server;
  std::vector<double> popularity(static_cast<std::size_t>(servers));
  double popularity_sum = 0;
  for (int s = 0; s < servers; ++s) {
    popularity[static_cast<std::size_t>(s)] =
        1.0 / std::pow(static_cast<double>(s + 1), params_.zipf_exponent);
    popularity_sum += popularity[static_cast<std::size_t>(s)];
  }
  for (int s = 0; s < servers; ++s) {
    const NodeId server = hosts[static_cast<std::size_t>(s)];
    const int sessions = std::max(
        1, static_cast<int>(popularity[static_cast<std::size_t>(s)] /
                                popularity_sum * total_sessions +
                            0.5));
    for (int c = 0; c < sessions; ++c) {
      // Clients drawn from the remaining hosts (may serve several servers).
      const std::size_t pick =
          static_cast<std::size_t>(servers) +
          rng.next_below(hosts.size() - static_cast<std::size_t>(servers));
      pairs_.emplace_back(hosts[pick], server);
    }
  }
}

void HttpBackground::install(emu::Emulator& emulator) const {
  const std::uint64_t dynamics =
      params_.dynamics_seed != 0 ? params_.dynamics_seed : params_.seed;
  Rng rng(mix_seed(dynamics, 0xbeef));
  const auto n = static_cast<std::size_t>(emulator.network().node_count());
  // One server endpoint per distinct server host; one client endpoint per
  // distinct client host, driving all of that host's sessions concurrently.
  std::vector<char> is_server(n, 0);
  for (const auto& [client, server] : pairs_)
    is_server[static_cast<std::size_t>(server)] = 1;
  for (NodeId host = 0; static_cast<std::size_t>(host) < n; ++host)
    if (is_server[static_cast<std::size_t>(host)])
      emulator.install_endpoint(
          host, std::make_unique<HttpServer>(
                    params_, mix_seed(dynamics,
                                      static_cast<std::uint64_t>(host))));

  std::vector<std::vector<NodeId>> sessions(n);
  for (const auto& [client, server] : pairs_)
    sessions[static_cast<std::size_t>(client)].push_back(server);
  for (NodeId host = 0; static_cast<std::size_t>(host) < n; ++host) {
    auto& list = sessions[static_cast<std::size_t>(host)];
    if (list.empty()) continue;
    MASSF_CHECK(!is_server[static_cast<std::size_t>(host)],
                "a host cannot be both HTTP client and server");
    emulator.install_endpoint(
        host,
        std::make_unique<HttpClient>(
            std::move(list), params_,
            mix_seed(dynamics, static_cast<std::uint64_t>(host) * 31)),
        rng.next_double(0, 1.0));
  }
}

std::vector<Flow> HttpBackground::predicted_background(
    const topology::Network& network) const {
  (void)network;
  // Average per-pair load: one cycle = think + transfer; predicted volume
  // in packets/s of response traffic (requests are negligible but included
  // for symmetry). This is the "average traffic bandwidth between two
  // endpoints" prediction §3.2 expects of generators.
  std::vector<Flow> flows;
  const double cycle = std::max(params_.think_time_s, 1e-3);
  const double response_pps = params_.request_size_bytes / 1500.0 / cycle;
  const double request_pps = params_.get_bytes / 1500.0 / cycle;
  for (const auto& [client, server] : pairs_) {
    flows.push_back({server, client, response_pps});
    flows.push_back({client, server, std::max(request_pps, 0.05)});
  }
  return flows;
}

}  // namespace massf::traffic
