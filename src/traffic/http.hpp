// HTTP background-traffic generator (paper §4.1.4).
//
// Reproduces the paper's user-facing description:
//
//   Traffic name        HTTP
//   request_size        200KByte
//   think_time          12
//   client_per_server   10
//   server_number       107
//
// "HTTP clients and servers are selected randomly from endpoints in the
// virtual network." Each client loops: send a small GET to its server; the
// server replies with a Pareto-distributed object around request_size (the
// Barford–Crovella heavy-tail insight); the client thinks for an
// exponential think_time and repeats. All randomness is seeded.
#pragma once

#include <cstdint>

#include "traffic/workload.hpp"

namespace massf::traffic {

struct HttpParams {
  double request_size_bytes = 200e3;  // mean response (page) size
  double think_time_s = 12;           // mean client think time
  int clients_per_server = 10;
  int server_number = 107;            // capped at available hosts
  double get_bytes = 400;             // request message size
  /// Pareto shape for response sizes (BarfordCrovella-style heavy tail).
  double pareto_shape = 1.5;
  /// Zipf exponent for server popularity (Barford–Crovella): the total
  /// client-session population is distributed across servers
  /// proportionally to 1/rank^zipf_exponent. 0 = uniform popularity.
  double zipf_exponent = 0.8;
  double duration_s = 600;
  /// Selects servers/clients (the *placement*).
  std::uint64_t seed = 7;
  /// Drives the run's dynamics (think times, response sizes, start
  /// offsets). 0 = derive from `seed`. Re-running the same placement with
  /// a different dynamics seed models run-to-run traffic variation — the
  /// situation the paper's §6 profile-reuse discussion cares about.
  std::uint64_t dynamics_seed = 0;
};

class HttpBackground : public Workload {
 public:
  /// Selects servers/clients deterministically from the network's hosts.
  /// Hosts in `excluded` (e.g. the foreground application's nodes) are not
  /// used for either role.
  HttpBackground(const topology::Network& network, HttpParams params,
                 std::vector<NodeId> excluded = {});

  void install(emu::Emulator& emulator) const override;
  std::vector<Flow> predicted_background(
      const topology::Network& network) const override;
  double duration() const override { return params_.duration_s; }

  /// (client, server) pairs in use — exposed for tests.
  const std::vector<std::pair<NodeId, NodeId>>& pairs() const {
    return pairs_;
  }

 private:
  HttpParams params_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (client, server)
};

}  // namespace massf::traffic
