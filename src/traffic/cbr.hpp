// Constant-bit-rate / Poisson flow generator.
//
// The simplest background-traffic model: a fixed set of (src, dst) flows,
// each emitting messages of a fixed size at a constant or
// exponentially-jittered interval. Used by tests (perfectly predictable
// load) and available as a user-facing generator.
#pragma once

#include <cstdint>

#include "traffic/workload.hpp"

namespace massf::traffic {

struct CbrFlowSpec {
  NodeId src = -1;
  NodeId dst = -1;
  double message_bytes = 15000;
  double interval_s = 0.1;
  /// 0 = strict CBR; 1 = Poisson (exponential gaps with the same mean).
  double jitter = 0;
  /// The flow starts sending at this simulation time (phased workloads).
  double start_s = 0;
};

struct CbrParams {
  double duration_s = 60;
  std::uint64_t seed = 5;
  /// Send via the reliable layer (ACK + retransmit on timeout): the flow
  /// survives transient link/router faults at the cost of retransmissions.
  bool reliable = false;
};

class CbrTraffic : public Workload {
 public:
  CbrTraffic(std::vector<CbrFlowSpec> flows, CbrParams params);

  void install(emu::Emulator& emulator) const override;
  std::vector<Flow> predicted_background(
      const topology::Network& network) const override;
  double duration() const override { return params_.duration_s; }

 private:
  std::vector<CbrFlowSpec> flows_;
  CbrParams params_;
};

}  // namespace massf::traffic
