#include "traffic/scalapack.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace massf::traffic {

namespace {

constexpr int kTagPanel = 200;
constexpr int kTagUpdate = 201;
constexpr int kTagAck = 202;
constexpr int kTagBaton = 203;

// Timer tags: (iteration << 8) | phase, mirroring the message tag scheme.
constexpr int kTimerPeerDone = 0;   // peer's update compute finished
constexpr int kTimerOwnerDone = 1;  // owner's trailing compute finished

/// Shared immutable schedule (sizes per iteration), referenced by every
/// rank endpoint of one install.
struct Schedule {
  std::vector<NodeId> hosts;
  std::vector<double> panel_bytes;
  std::vector<double> update_bytes;
  std::vector<double> compute_s;
  bool reliable = false;

  int ranks() const { return static_cast<int>(hosts.size()); }
  int iterations() const { return static_cast<int>(panel_bytes.size()); }
  int rank_of(NodeId host) const {
    for (int r = 0; r < ranks(); ++r)
      if (hosts[static_cast<std::size_t>(r)] == host) return r;
    return -1;
  }
  int owner(int iteration) const { return iteration % ranks(); }
};

/// One MPI-rank-like endpoint. The iteration protocol:
///   owner: broadcast panel to all peers (P-1 messages)
///   peer:  on panel -> compute update -> send trailing piece to ring
///          neighbor + ack to owner
///   owner: on P-1 acks -> own compute -> next iteration's owner starts
///          (owner sends a tiny "token" panel when ownership moves — it is
///          the panel broadcast itself, so no extra control traffic).
class ScalapackRank : public emu::AppEndpoint {
 public:
  ScalapackRank(std::shared_ptr<const Schedule> schedule, int rank)
      : schedule_(std::move(schedule)), rank_(rank) {}

  void start(emu::AppApi& api) override {
    if (rank_ == schedule_->owner(0)) begin_iteration(api, 0);
  }

  void receive(emu::AppApi& api, const emu::AppMessage& message) override {
    const int iteration = message.tag >> 8;
    const int tag = message.tag & 0xff;
    switch (tag) {
      case kTagPanel:
        // Peer: apply the update (compute), then trailing exchange + ack.
        api.set_timer(
            schedule_->compute_s[static_cast<std::size_t>(iteration)] /
                schedule_->ranks(),
            (iteration << 8) | kTimerPeerDone);
        break;
      case kTagAck:
        if (++acks_ == schedule_->ranks() - 1) {
          acks_ = 0;
          // Owner's own trailing update, then hand off.
          api.set_timer(
              schedule_->compute_s[static_cast<std::size_t>(iteration)] /
                  schedule_->ranks(),
              (iteration << 8) | kTimerOwnerDone);
        }
        break;
      case kTagBaton:
        // Baton: this rank owns iteration `iteration` — start it.
        begin_iteration(api, iteration);
        break;
      case kTagUpdate:
      default:
        break;  // trailing-matrix data needs no action
    }
  }

  void on_timer(emu::AppApi& api, std::int64_t tag) override {
    const int iteration = static_cast<int>(tag >> 8);
    const int phase = static_cast<int>(tag & 0xff);
    if (phase == kTimerPeerDone) {
      const int next_rank = (rank_ + 1) % schedule_->ranks();
      if (next_rank != rank_)
        post(api, schedule_->hosts[static_cast<std::size_t>(next_rank)],
             schedule_->update_bytes[static_cast<std::size_t>(iteration)],
             (iteration << 8) | kTagUpdate);
      const int owner = schedule_->owner(iteration);
      post(api, schedule_->hosts[static_cast<std::size_t>(owner)], 256,
           (iteration << 8) | kTagAck);
      return;
    }
    // Owner compute finished: advance the factorization.
    const int next = iteration + 1;
    if (next >= schedule_->iterations()) return;  // factorized
    const int next_owner = schedule_->owner(next);
    if (next_owner == rank_) {
      begin_iteration(api, next);
    } else {
      // The panel broadcast of iteration `next` starts at its owner; send
      // it the baton (tiny message tagged as that iteration's trigger).
      post(api, schedule_->hosts[static_cast<std::size_t>(next_owner)], 128,
           (next << 8) | kTagBaton);
    }
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(static_cast<std::uint64_t>(acks_));
  }

  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == 1,
                  "ScaLapack rank snapshot state must be 1 word");
    acks_ = static_cast<int>(in[0]);
  }

 private:
  /// All protocol traffic goes through here so the reliable flag applies
  /// to every message kind (a lost control message stalls the ring).
  void post(emu::AppApi& api, NodeId dst, double bytes, int tag) {
    if (schedule_->reliable)
      api.send_reliable(dst, bytes, tag);
    else
      api.send(dst, bytes, tag);
  }

  void begin_iteration(emu::AppApi& api, int iteration) {
    const double bytes =
        schedule_->panel_bytes[static_cast<std::size_t>(iteration)];
    for (int r = 0; r < schedule_->ranks(); ++r) {
      if (r == rank_) continue;
      post(api, schedule_->hosts[static_cast<std::size_t>(r)], bytes,
           (iteration << 8) | kTagPanel);
    }
  }

  std::shared_ptr<const Schedule> schedule_;
  int rank_;
  int acks_ = 0;
};

}  // namespace

ScalapackApp::ScalapackApp(std::vector<NodeId> hosts, ScalapackParams params)
    : hosts_(std::move(hosts)), params_(params) {
  MASSF_REQUIRE(hosts_.size() >= 2, "ScaLapack model needs >= 2 hosts");
  MASSF_REQUIRE(params_.matrix_n > 0 && params_.block_nb > 0,
                "matrix/block sizes must be positive");
  MASSF_REQUIRE(params_.block_nb <= params_.matrix_n,
                "block must not exceed the matrix");
  MASSF_REQUIRE(params_.size_scale > 0, "size_scale must be positive");
}

int ScalapackApp::iterations() const {
  return params_.matrix_n / params_.block_nb;
}

double ScalapackApp::panel_bytes(int iteration) const {
  const int remaining = params_.matrix_n - iteration * params_.block_nb;
  return std::max(1.0, 8.0 * params_.block_nb * remaining *
                           params_.size_scale);
}

double ScalapackApp::update_bytes(int iteration) const {
  return std::max(1.0, panel_bytes(iteration) * 0.5);
}

double ScalapackApp::compute_seconds(int iteration) const {
  // Proportional to the true (N - k*nb)^2 * nb flop profile, normalized so
  // the sum over iterations is total_compute_s.
  double total_weight = 0;
  for (int k = 0; k < iterations(); ++k) {
    const double remaining = params_.matrix_n - k * params_.block_nb;
    total_weight += remaining * remaining;
  }
  const double remaining =
      params_.matrix_n - iteration * params_.block_nb;
  return params_.total_compute_s * (remaining * remaining) / total_weight;
}

double ScalapackApp::duration() const {
  // Compute plus a generous allowance for communication.
  return params_.total_compute_s * 1.8;
}

void ScalapackApp::install(emu::Emulator& emulator) const {
  auto schedule = std::make_shared<Schedule>();
  schedule->hosts = hosts_;
  schedule->reliable = params_.reliable;
  for (int k = 0; k < iterations(); ++k) {
    schedule->panel_bytes.push_back(panel_bytes(k));
    schedule->update_bytes.push_back(update_bytes(k));
    schedule->compute_s.push_back(compute_seconds(k));
  }
  for (int r = 0; r < static_cast<int>(hosts_.size()); ++r)
    emulator.install_endpoint(
        hosts_[static_cast<std::size_t>(r)],
        std::make_unique<ScalapackRank>(schedule, r));
}

}  // namespace massf::traffic
