// GridNPB 3.0-like foreground workload.
//
// The NAS Grid Benchmarks compose slightly-modified NPB solver tasks into
// data-flow graphs; the paper runs the combination of Helical Chain (HC),
// Visualization Pipeline (VP) and Mixed Bag (MB) at class S for ~15
// minutes. The property the paper leans on is *irregularity*: different
// tasks dominate at different stages, data volumes vary widely between
// edges, and traffic is bursty — so PLACE's even all-to-all prediction is
// poor and PROFILE has the most room to improve (§4.2.1).
//
// We model each benchmark as an explicit task DAG executed by workflow
// endpoints: a task fires when all its inputs have arrived, computes for
// its modeled time, then ships its outputs to successor tasks. The three
// graphs run concurrently and loop (instances chained back-to-back) to
// fill the configured duration.
#pragma once

#include <cstdint>
#include <vector>

#include "traffic/workload.hpp"

namespace massf::traffic {

/// One node of a workflow DAG.
struct WorkflowTask {
  NodeId host = -1;       // where the task executes
  double compute_s = 0;   // modeled compute time once inputs are ready
  int inputs_required = 0;
  /// (successor task index, bytes to send to it)
  std::vector<std::pair<int, double>> outputs;
};

/// An executable task DAG (validated: acyclic by construction — successors
/// always have larger indices).
struct TaskGraph {
  std::vector<WorkflowTask> tasks;

  /// Tasks with inputs_required == 0 (fire at start).
  std::vector<int> roots() const;
  double total_bytes() const;
  double total_compute() const;
};

struct GridNpbParams {
  /// Repetitions of the combined HC+VP+MB graph (instances are chained so
  /// the run stays causal end to end).
  int rounds = 6;
  /// Class-S data scale: bytes of a "large" solver output.
  double unit_bytes = 600e3;
  /// Compute time of a "unit" task; individual tasks vary around it.
  double unit_compute_s = 6.0;
  std::uint64_t seed = 13;
  /// Ship inter-task data via the reliable layer so the DAG completes
  /// across transient faults (a lost edge transfer stalls its successor
  /// forever otherwise).
  bool reliable = false;
};

/// Workflow executor usable for any TaskGraph (exposed for tests/examples).
class WorkflowApp : public Workload {
 public:
  WorkflowApp(TaskGraph graph, double nominal_duration, bool reliable = false);

  void install(emu::Emulator& emulator) const override;
  std::vector<NodeId> injection_points() const override;
  double duration() const override { return nominal_duration_; }

  const TaskGraph& graph() const { return graph_; }

 private:
  TaskGraph graph_;
  double nominal_duration_;
  bool reliable_;
};

/// Build the paper's combined HC + VP + MB workload over the given hosts
/// (>= 3 hosts; tasks are spread deterministically).
TaskGraph make_gridnpb_graph(const std::vector<NodeId>& hosts,
                             const GridNpbParams& params);

/// Convenience: WorkflowApp wrapping make_gridnpb_graph.
WorkflowApp make_gridnpb(const std::vector<NodeId>& hosts,
                         const GridNpbParams& params);

/// Individual benchmark graphs (single instance, for tests/examples).
TaskGraph make_helical_chain(const std::vector<NodeId>& hosts,
                             const GridNpbParams& params);
TaskGraph make_visualization_pipeline(const std::vector<NodeId>& hosts,
                                      const GridNpbParams& params);
TaskGraph make_mixed_bag(const std::vector<NodeId>& hosts,
                         const GridNpbParams& params);

}  // namespace massf::traffic
