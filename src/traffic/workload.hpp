// Workload abstraction shared by experiments and the mapping framework.
//
// A Workload can (a) install its application endpoints into an emulator for
// live execution, and (b) describe itself to the PLACE mapper: predicted
// background flows (generators "can provide some prediction of their
// generated traffic load", §3.2) and foreground injection points (the hosts
// where the live application attaches; PLACE assumes they saturate their
// access links talking all-to-all evenly).
#pragma once

#include <memory>
#include <vector>

#include "emu/emulator.hpp"
#include "routing/routing.hpp"
#include "topology/network.hpp"

namespace massf::traffic {

using routing::Flow;
using topology::NodeId;

class Workload {
 public:
  virtual ~Workload() = default;

  /// Install endpoints on the emulator (called once per emulation run;
  /// implementations must be reusable across emulators).
  virtual void install(emu::Emulator& emulator) const = 0;

  /// Predicted background flows in packets/second (empty for pure
  /// foreground applications). PLACE feeds these into the edge weights.
  virtual std::vector<Flow> predicted_background(
      const topology::Network& network) const {
    (void)network;
    return {};
  }

  /// Hosts where the live (foreground) application injects traffic.
  virtual std::vector<NodeId> injection_points() const { return {}; }

  /// Nominal duration of the workload in simulation seconds.
  virtual double duration() const = 0;
};

/// A set of workloads installed together (e.g. foreground app + background
/// traffic), presented as one Workload.
class CompositeWorkload : public Workload {
 public:
  void add(std::shared_ptr<const Workload> workload) {
    parts_.push_back(std::move(workload));
  }

  void install(emu::Emulator& emulator) const override {
    for (const auto& part : parts_) part->install(emulator);
  }

  std::vector<Flow> predicted_background(
      const topology::Network& network) const override {
    std::vector<Flow> all;
    for (const auto& part : parts_) {
      auto flows = part->predicted_background(network);
      all.insert(all.end(), flows.begin(), flows.end());
    }
    return all;
  }

  std::vector<NodeId> injection_points() const override {
    std::vector<NodeId> all;
    for (const auto& part : parts_) {
      auto points = part->injection_points();
      all.insert(all.end(), points.begin(), points.end());
    }
    return all;
  }

  double duration() const override {
    double longest = 0;
    for (const auto& part : parts_)
      longest = std::max(longest, part->duration());
    return longest;
  }

 private:
  std::vector<std::shared_ptr<const Workload>> parts_;
};

}  // namespace massf::traffic
