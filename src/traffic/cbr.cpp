#include "traffic/cbr.hpp"

#include <memory>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace massf::traffic {

namespace {

constexpr int kTagCbr = 300;

/// Sender endpoint driving one or more flows that originate at its host.
class CbrSender : public emu::AppEndpoint {
 public:
  CbrSender(std::vector<CbrFlowSpec> flows, double duration,
            std::uint64_t seed, bool reliable)
      : flows_(std::move(flows)),
        duration_(duration),
        rng_(seed),
        reliable_(reliable) {}

  void start(emu::AppApi& api) override {
    for (std::size_t i = 0; i < flows_.size(); ++i)
      arm(api, i, /*first=*/true);
  }

  /// Timer tag = flow index; each firing sends one message and re-arms.
  void on_timer(emu::AppApi& api, std::int64_t tag) override {
    if (api.now() >= duration_) return;
    const auto index = static_cast<std::size_t>(tag);
    const CbrFlowSpec& flow = flows_[index];
    if (reliable_)
      api.send_reliable(flow.dst, flow.message_bytes, kTagCbr);
    else
      api.send(flow.dst, flow.message_bytes, kTagCbr);
    arm(api, index, /*first=*/false);
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    for (std::uint64_t word : rng_.state()) out.push_back(word);
  }

  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == 4,
                  "CBR sender snapshot state must be 4 RNG words");
    rng_.set_state({in[0], in[1], in[2], in[3]});
  }

 private:
  void arm(emu::AppApi& api, std::size_t index, bool first) {
    const CbrFlowSpec& flow = flows_[index];
    double gap = flow.interval_s;
    if (flow.jitter > 0)
      gap = (1 - flow.jitter) * flow.interval_s +
            flow.jitter * rng_.next_exponential(flow.interval_s);
    if (first)  // start offset plus desynchronization
      gap = flow.start_s + rng_.next_double(0, flow.interval_s);
    api.set_timer(gap, static_cast<std::int64_t>(index));
  }

  std::vector<CbrFlowSpec> flows_;
  double duration_;
  Rng rng_;
  bool reliable_;
};

/// Sink endpoint (messages need a receiver object only if someone reacts;
/// CBR sinks silently, so no endpoint is required at the destination).

}  // namespace

CbrTraffic::CbrTraffic(std::vector<CbrFlowSpec> flows, CbrParams params)
    : flows_(std::move(flows)), params_(params) {
  for (const CbrFlowSpec& f : flows_) {
    MASSF_REQUIRE(f.src >= 0 && f.dst >= 0 && f.src != f.dst,
                  "CBR flow endpoints invalid");
    MASSF_REQUIRE(f.message_bytes > 0 && f.interval_s > 0,
                  "CBR flow parameters must be positive");
    MASSF_REQUIRE(f.jitter >= 0 && f.jitter <= 1, "jitter must be in [0,1]");
    MASSF_REQUIRE(f.start_s >= 0, "flow start must be non-negative");
  }
}

void CbrTraffic::install(emu::Emulator& emulator) const {
  // Group flows by source host: one sender endpoint per host.
  std::vector<std::vector<CbrFlowSpec>> by_host(
      static_cast<std::size_t>(emulator.network().node_count()));
  for (const CbrFlowSpec& f : flows_)
    by_host[static_cast<std::size_t>(f.src)].push_back(f);
  for (std::size_t h = 0; h < by_host.size(); ++h) {
    if (by_host[h].empty()) continue;
    emulator.install_endpoint(
        static_cast<NodeId>(h),
        std::make_unique<CbrSender>(std::move(by_host[h]),
                                    params_.duration_s,
                                    mix_seed(params_.seed, h),
                                    params_.reliable));
  }
}

std::vector<Flow> CbrTraffic::predicted_background(
    const topology::Network& network) const {
  (void)network;
  std::vector<Flow> out;
  for (const CbrFlowSpec& f : flows_)
    out.push_back(
        {f.src, f.dst, f.message_bytes / 1500.0 / f.interval_s});
  return out;
}

}  // namespace massf::traffic
