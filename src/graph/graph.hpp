// Core weighted-graph representation shared by the partitioner and the
// mapping framework.
//
// The graph is undirected and stored in compressed-sparse-row (CSR) form:
// each undirected edge appears as two directed arcs. Vertices carry a fixed
// number of weight components ("constraints" in multi-constraint
// partitioning terminology — e.g. computation and memory, or one component
// per PROFILE time segment). Arcs carry a single scalar weight; callers that
// need several edge metrics (latency objective vs. traffic objective) keep
// parallel arrays indexed by arc and combine them into the single weight via
// partition::combine_objectives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace massf::graph {

using VertexId = std::int32_t;
using ArcIndex = std::int64_t;

/// Immutable CSR graph with multi-component vertex weights.
class Graph {
 public:
  Graph() = default;

  /// Construct from raw CSR arrays. `xadj` has n+1 entries; `adjncy` and
  /// `adjwgt` have xadj[n] entries; `vwgt` has n*ncon entries. Every arc
  /// must have a twin (the structure must be symmetric) — GraphBuilder
  /// guarantees this; direct construction validates sizes only.
  Graph(std::vector<ArcIndex> xadj, std::vector<VertexId> adjncy,
        std::vector<double> adjwgt, std::vector<double> vwgt, int ncon);

  VertexId vertex_count() const {
    return static_cast<VertexId>(xadj_.empty() ? 0 : xadj_.size() - 1);
  }
  /// Number of undirected edges (arc count / 2).
  std::int64_t edge_count() const {
    return static_cast<std::int64_t>(adjncy_.size()) / 2;
  }
  ArcIndex arc_count() const { return static_cast<ArcIndex>(adjncy_.size()); }
  /// Number of vertex-weight components (constraints).
  int constraint_count() const { return ncon_; }

  /// Arc range [arc_begin(v), arc_end(v)) enumerates v's incident arcs.
  ArcIndex arc_begin(VertexId v) const { return xadj_[check_vertex(v)]; }
  ArcIndex arc_end(VertexId v) const { return xadj_[check_vertex(v) + 1]; }
  VertexId arc_target(ArcIndex a) const { return adjncy_[check_arc(a)]; }
  double arc_weight(ArcIndex a) const { return adjwgt_[check_arc(a)]; }

  VertexId degree(VertexId v) const {
    return static_cast<VertexId>(arc_end(v) - arc_begin(v));
  }

  /// Neighbor list of v as a span (arc order).
  std::span<const VertexId> neighbors(VertexId v) const {
    const ArcIndex b = arc_begin(v);
    return {adjncy_.data() + b, static_cast<std::size_t>(arc_end(v) - b)};
  }

  /// Weight component c of vertex v.
  double vertex_weight(VertexId v, int c = 0) const {
    MASSF_REQUIRE(c >= 0 && c < ncon_, "constraint index out of range");
    return vwgt_[static_cast<std::size_t>(check_vertex(v)) *
                     static_cast<std::size_t>(ncon_) +
                 static_cast<std::size_t>(c)];
  }

  /// All weight components of vertex v (length == constraint_count()).
  std::span<const double> vertex_weights(VertexId v) const {
    return {vwgt_.data() + static_cast<std::size_t>(check_vertex(v)) *
                               static_cast<std::size_t>(ncon_),
            static_cast<std::size_t>(ncon_)};
  }

  /// Sum of weight component c over all vertices.
  double total_vertex_weight(int c = 0) const;

  /// Sum of all arc weights / 2 (i.e. total undirected edge weight).
  double total_edge_weight() const;

  /// Raw CSR access for algorithms that iterate the whole structure.
  const std::vector<ArcIndex>& xadj() const { return xadj_; }
  const std::vector<VertexId>& adjncy() const { return adjncy_; }
  const std::vector<double>& adjwgt() const { return adjwgt_; }
  const std::vector<double>& vwgt() const { return vwgt_; }

  /// Return a copy of this graph with the arc weights replaced (same
  /// structure). `new_adjwgt` must have arc_count() entries.
  Graph with_arc_weights(std::vector<double> new_adjwgt) const;

  /// Return a copy with vertex weights replaced. `new_vwgt` must have
  /// vertex_count()*new_ncon entries.
  Graph with_vertex_weights(std::vector<double> new_vwgt, int new_ncon) const;

 private:
  VertexId check_vertex(VertexId v) const {
    MASSF_REQUIRE(v >= 0 && v < vertex_count(),
                  "vertex " << v << " out of range [0," << vertex_count()
                            << ")");
    return v;
  }
  ArcIndex check_arc(ArcIndex a) const {
    MASSF_REQUIRE(a >= 0 && a < arc_count(), "arc index out of range");
    return a;
  }

  std::vector<ArcIndex> xadj_{0};
  std::vector<VertexId> adjncy_;
  std::vector<double> adjwgt_;
  std::vector<double> vwgt_;
  int ncon_ = 1;
};

/// Incremental builder producing a symmetric CSR Graph. Parallel edges are
/// merged by summing their weights; self-loops are rejected (they carry no
/// information for partitioning or routing).
class GraphBuilder {
 public:
  /// ncon = number of vertex-weight components every vertex will carry.
  explicit GraphBuilder(int ncon = 1);

  /// Add a vertex with the given weight components (size must equal ncon;
  /// an empty span means all-zero weights). Returns its id (dense, 0-based).
  VertexId add_vertex(std::span<const double> weights = {});

  /// Convenience: single-constraint vertex.
  VertexId add_vertex(double weight);

  /// Add an undirected edge u—v with the given weight. Both endpoints must
  /// already exist and be distinct.
  void add_edge(VertexId u, VertexId v, double weight = 1.0);

  /// Overwrite the weight components of an existing vertex.
  void set_vertex_weights(VertexId v, std::span<const double> weights);

  VertexId vertex_count() const {
    return static_cast<VertexId>(vertex_weights_.size());
  }

  /// Finalize into an immutable CSR graph. The builder can keep being used
  /// afterwards (build() is non-destructive).
  Graph build() const;

 private:
  struct HalfEdge {
    VertexId from;
    VertexId to;
    double weight;
  };

  int ncon_;
  std::vector<std::vector<double>> vertex_weights_;
  std::vector<HalfEdge> edges_;  // one record per undirected edge
};

}  // namespace massf::graph
