#include "graph/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace massf::graph {

FlowNetwork::FlowNetwork(int vertex_count) : head_(vertex_count, -1) {
  MASSF_REQUIRE(vertex_count >= 0, "vertex count must be non-negative");
}

int FlowNetwork::add_arc(int u, int v, double capacity) {
  MASSF_REQUIRE(u >= 0 && u < vertex_count(), "arc source out of range");
  MASSF_REQUIRE(v >= 0 && v < vertex_count(), "arc target out of range");
  MASSF_REQUIRE(capacity >= 0, "capacity must be non-negative");
  MASSF_REQUIRE(!solved_, "cannot add arcs after max_flow()");
  const int forward = static_cast<int>(arcs_.size());
  arcs_.push_back({v, head_[static_cast<std::size_t>(u)], capacity, capacity});
  head_[static_cast<std::size_t>(u)] = forward;
  arcs_.push_back({u, head_[static_cast<std::size_t>(v)], 0.0, 0.0});
  head_[static_cast<std::size_t>(v)] = forward + 1;
  return forward;
}

bool FlowNetwork::build_levels(int source, int sink) {
  level_.assign(head_.size(), -1);
  std::queue<int> queue;
  level_[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int a = head_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.capacity > 0 && level_[static_cast<std::size_t>(arc.to)] < 0) {
        level_[static_cast<std::size_t>(arc.to)] =
            level_[static_cast<std::size_t>(u)] + 1;
        queue.push(arc.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(sink)] >= 0;
}

double FlowNetwork::push(int u, int sink, double limit) {
  if (u == sink || limit <= 0) return limit;
  double pushed = 0;
  for (int& a = iter_[static_cast<std::size_t>(u)]; a != -1;
       a = arcs_[static_cast<std::size_t>(a)].next) {
    Arc& arc = arcs_[static_cast<std::size_t>(a)];
    if (arc.capacity <= 0 ||
        level_[static_cast<std::size_t>(arc.to)] !=
            level_[static_cast<std::size_t>(u)] + 1)
      continue;
    const double sent =
        push(arc.to, sink, std::min(limit - pushed, arc.capacity));
    if (sent > 0) {
      arc.capacity -= sent;
      arcs_[static_cast<std::size_t>(a ^ 1)].capacity += sent;
      pushed += sent;
      if (pushed >= limit) break;
    }
  }
  return pushed;
}

double FlowNetwork::max_flow(int source, int sink) {
  MASSF_REQUIRE(source >= 0 && source < vertex_count(),
                "flow source out of range");
  MASSF_REQUIRE(sink >= 0 && sink < vertex_count(), "flow sink out of range");
  MASSF_REQUIRE(source != sink, "source and sink must differ");
  MASSF_REQUIRE(!solved_, "max_flow() may only be called once");
  solved_ = true;
  source_ = source;

  double total = 0;
  while (build_levels(source, sink)) {
    iter_ = head_;
    double sent;
    while ((sent = push(source, sink,
                        std::numeric_limits<double>::infinity())) > 0)
      total += sent;
  }
  return total;
}

double FlowNetwork::flow_on(int arc_handle) const {
  MASSF_REQUIRE(arc_handle >= 0 &&
                    static_cast<std::size_t>(arc_handle) < arcs_.size() &&
                    arc_handle % 2 == 0,
                "invalid arc handle");
  const Arc& arc = arcs_[static_cast<std::size_t>(arc_handle)];
  return arc.original - arc.capacity;
}

std::vector<bool> FlowNetwork::min_cut_source_side() const {
  MASSF_REQUIRE(solved_, "call max_flow() first");
  std::vector<bool> side(head_.size(), false);
  std::queue<int> queue;
  side[static_cast<std::size_t>(source_)] = true;
  queue.push(source_);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop();
    for (int a = head_[static_cast<std::size_t>(u)]; a != -1;
         a = arcs_[static_cast<std::size_t>(a)].next) {
      const Arc& arc = arcs_[static_cast<std::size_t>(a)];
      if (arc.capacity > 1e-12 && !side[static_cast<std::size_t>(arc.to)]) {
        side[static_cast<std::size_t>(arc.to)] = true;
        queue.push(arc.to);
      }
    }
  }
  return side;
}

}  // namespace massf::graph
