#include "graph/graph_io.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/string_util.hpp"

namespace massf::graph {

namespace {

long long as_metis_weight(double w) {
  return std::max(1LL, static_cast<long long>(std::llround(w)));
}

}  // namespace

std::string write_metis(const Graph& graph) {
  std::ostringstream os;
  os << graph.vertex_count() << ' ' << graph.edge_count() << " 011 "
     << graph.constraint_count() << '\n';
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    bool first = true;
    for (double w : graph.vertex_weights(v)) {
      if (!first) os << ' ';
      os << as_metis_weight(w);
      first = false;
    }
    for (ArcIndex a = graph.arc_begin(v); a != graph.arc_end(v); ++a) {
      // METIS vertex ids are 1-based.
      os << ' ' << graph.arc_target(a) + 1 << ' '
         << as_metis_weight(graph.arc_weight(a));
    }
    os << '\n';
  }
  return os.str();
}

Graph read_metis(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_number = 0;

  auto next_content_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_number;
      const std::string trimmed = trim(line);
      if (!trimmed.empty() && trimmed[0] != '%') return true;
    }
    return false;
  };

  MASSF_REQUIRE(next_content_line(), "empty METIS file");
  const auto header = split_whitespace(line);
  MASSF_REQUIRE(header.size() >= 2 && header.size() <= 4,
                "METIS header line " << line_number << " malformed");
  const auto n = static_cast<VertexId>(parse_int(header[0]));
  const auto m = parse_int(header[1]);
  const std::string fmt = header.size() >= 3 ? header[2] : "000";
  const int ncon =
      header.size() >= 4 ? static_cast<int>(parse_int(header[3])) : 1;
  const bool has_vertex_weights = fmt.size() >= 2 && fmt[1] == '1';
  const bool has_edge_weights = fmt.size() >= 3 && fmt[2] == '1';
  MASSF_REQUIRE(fmt == "000" || fmt == "001" || fmt == "011" || fmt == "010",
                "unsupported METIS fmt '" << fmt << "'");

  GraphBuilder builder(ncon);
  for (VertexId v = 0; v < n; ++v) builder.add_vertex();

  for (VertexId v = 0; v < n; ++v) {
    MASSF_REQUIRE(next_content_line(),
                  "METIS file ends before vertex " << v + 1);
    const auto tokens = split_whitespace(line);
    std::size_t pos = 0;
    if (has_vertex_weights) {
      std::vector<double> weights;
      for (int c = 0; c < ncon; ++c) {
        MASSF_REQUIRE(pos < tokens.size(),
                      "line " << line_number << ": missing vertex weight");
        weights.push_back(parse_double(tokens[pos++]));
      }
      builder.set_vertex_weights(v, weights);
    }
    while (pos < tokens.size()) {
      const auto target = static_cast<VertexId>(parse_int(tokens[pos++]) - 1);
      double weight = 1.0;
      if (has_edge_weights) {
        MASSF_REQUIRE(pos < tokens.size(),
                      "line " << line_number << ": missing edge weight");
        weight = parse_double(tokens[pos++]);
      }
      MASSF_REQUIRE(target >= 0 && target < n,
                    "line " << line_number << ": neighbor out of range");
      // Each undirected edge appears twice; add it once (from the smaller
      // endpoint) to avoid doubling weights in the builder's merge.
      if (v < target) builder.add_edge(v, target, weight);
    }
  }
  Graph graph = builder.build();
  MASSF_REQUIRE(graph.edge_count() == m,
                "METIS header declares " << m << " edges but file has "
                                         << graph.edge_count());
  return graph;
}

std::string write_dot(const Graph& graph,
                      const std::vector<int>* assignment) {
  static const char* kPalette[] = {
      "#66c2a5", "#fc8d62", "#8da0cb", "#e78ac3", "#a6d854", "#ffd92f",
      "#e5c494", "#b3b3b3", "#1b9e77", "#d95f02", "#7570b3", "#e7298a"};
  constexpr std::size_t kColors = sizeof(kPalette) / sizeof(kPalette[0]);

  if (assignment != nullptr) {
    MASSF_REQUIRE(assignment->size() ==
                      static_cast<std::size_t>(graph.vertex_count()),
                  "assignment must cover every vertex");
    for (int block : *assignment)
      MASSF_REQUIRE(block >= 0, "block ids must be non-negative");
  }

  std::ostringstream os;
  os << "graph massf {\n  node [style=filled];\n";
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    os << "  n" << v;
    if (assignment != nullptr) {
      const auto block =
          static_cast<std::size_t>((*assignment)[static_cast<std::size_t>(v)]);
      os << " [fillcolor=\"" << kPalette[block % kColors] << "\" label=\"" << v
         << "/" << block << "\"]";
    }
    os << ";\n";
  }
  for (VertexId u = 0; u < graph.vertex_count(); ++u)
    for (ArcIndex a = graph.arc_begin(u); a != graph.arc_end(u); ++a) {
      const VertexId v = graph.arc_target(a);
      if (u < v) os << "  n" << u << " -- n" << v << ";\n";
    }
  os << "}\n";
  return os.str();
}

}  // namespace massf::graph
