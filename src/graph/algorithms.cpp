#include "graph/algorithms.hpp"

#include <algorithm>
#include <queue>

namespace massf::graph {

std::vector<VertexId> ShortestPaths::path_to(VertexId v) const {
  if (!reachable(v)) return {};
  std::vector<VertexId> path;
  for (VertexId cur = v; cur != -1;
       cur = parent[static_cast<std::size_t>(cur)])
    path.push_back(cur);
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths dijkstra(const Graph& graph, VertexId source,
                       const std::vector<double>& arc_length) {
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  MASSF_REQUIRE(source >= 0 && static_cast<std::size_t>(source) < n,
                "dijkstra source out of range");
  MASSF_REQUIRE(arc_length.size() ==
                    static_cast<std::size_t>(graph.arc_count()),
                "arc_length must have one entry per arc");

  ShortestPaths result;
  result.distance.assign(n, ShortestPaths::infinity());
  result.parent.assign(n, -1);

  using Item = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.distance[static_cast<std::size_t>(source)] = 0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > result.distance[static_cast<std::size_t>(u)]) continue;
    for (ArcIndex a = graph.arc_begin(u); a != graph.arc_end(u); ++a) {
      const double len = arc_length[static_cast<std::size_t>(a)];
      MASSF_REQUIRE(len >= 0, "dijkstra requires non-negative arc lengths");
      const VertexId v = graph.arc_target(a);
      const double candidate = dist + len;
      if (candidate < result.distance[static_cast<std::size_t>(v)]) {
        result.distance[static_cast<std::size_t>(v)] = candidate;
        result.parent[static_cast<std::size_t>(v)] = u;
        heap.emplace(candidate, v);
      }
    }
  }
  return result;
}

ShortestPaths dijkstra(const Graph& graph, VertexId source) {
  return dijkstra(graph, source, graph.adjwgt());
}

std::vector<VertexId> bfs_order(const Graph& graph, VertexId source) {
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  MASSF_REQUIRE(source >= 0 && static_cast<std::size_t>(source) < n,
                "bfs source out of range");
  std::vector<bool> seen(n, false);
  std::vector<VertexId> order;
  order.reserve(n);
  std::queue<VertexId> queue;
  queue.push(source);
  seen[static_cast<std::size_t>(source)] = true;
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    order.push_back(u);
    for (VertexId v : graph.neighbors(u)) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        queue.push(v);
      }
    }
  }
  return order;
}

std::vector<int> bfs_distance(const Graph& graph, VertexId source) {
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  MASSF_REQUIRE(source >= 0 && static_cast<std::size_t>(source) < n,
                "bfs source out of range");
  std::vector<int> dist(n, -1);
  std::queue<VertexId> queue;
  dist[static_cast<std::size_t>(source)] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (VertexId v : graph.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

int connected_components(const Graph& graph, std::vector<int>& component) {
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  component.assign(n, -1);
  int count = 0;
  std::queue<VertexId> queue;
  for (VertexId s = 0; static_cast<std::size_t>(s) < n; ++s) {
    if (component[static_cast<std::size_t>(s)] >= 0) continue;
    component[static_cast<std::size_t>(s)] = count;
    queue.push(s);
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop();
      for (VertexId v : graph.neighbors(u)) {
        if (component[static_cast<std::size_t>(v)] < 0) {
          component[static_cast<std::size_t>(v)] = count;
          queue.push(v);
        }
      }
    }
    ++count;
  }
  return count;
}

Graph induced_subgraph(const Graph& graph,
                       const std::vector<VertexId>& vertices) {
  const auto n = static_cast<std::size_t>(graph.vertex_count());
  std::vector<VertexId> old_to_new(n, -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    MASSF_REQUIRE(v >= 0 && static_cast<std::size_t>(v) < n,
                  "subgraph vertex out of range");
    MASSF_REQUIRE(old_to_new[static_cast<std::size_t>(v)] == -1,
                  "duplicate vertex " << v << " in subgraph selection");
    old_to_new[static_cast<std::size_t>(v)] = static_cast<VertexId>(i);
  }
  GraphBuilder builder(graph.constraint_count());
  for (VertexId v : vertices) builder.add_vertex(graph.vertex_weights(v));
  for (VertexId v : vertices) {
    const VertexId nv = old_to_new[static_cast<std::size_t>(v)];
    for (ArcIndex a = graph.arc_begin(v); a != graph.arc_end(v); ++a) {
      const VertexId t = graph.arc_target(a);
      const VertexId nt = old_to_new[static_cast<std::size_t>(t)];
      if (nt >= 0 && nv < nt) builder.add_edge(nv, nt, graph.arc_weight(a));
    }
  }
  return builder.build();
}

bool is_connected(const Graph& graph) {
  if (graph.vertex_count() == 0) return true;
  std::vector<int> component;
  return connected_components(graph, component) == 1;
}

}  // namespace massf::graph
