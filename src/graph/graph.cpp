#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>

namespace massf::graph {

Graph::Graph(std::vector<ArcIndex> xadj, std::vector<VertexId> adjncy,
             std::vector<double> adjwgt, std::vector<double> vwgt, int ncon)
    : xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      adjwgt_(std::move(adjwgt)),
      vwgt_(std::move(vwgt)),
      ncon_(ncon) {
  MASSF_REQUIRE(ncon_ >= 1, "graph needs at least one vertex-weight component");
  MASSF_REQUIRE(!xadj_.empty() && xadj_.front() == 0,
                "xadj must start with 0");
  const std::size_t n = xadj_.size() - 1;
  MASSF_REQUIRE(static_cast<std::size_t>(xadj_.back()) == adjncy_.size(),
                "xadj/adjncy size mismatch");
  MASSF_REQUIRE(adjwgt_.size() == adjncy_.size(),
                "adjwgt/adjncy size mismatch");
  MASSF_REQUIRE(vwgt_.size() == n * static_cast<std::size_t>(ncon_),
                "vwgt size must be n*ncon");
  MASSF_REQUIRE(std::is_sorted(xadj_.begin(), xadj_.end()),
                "xadj must be nondecreasing");
  for (VertexId target : adjncy_)
    MASSF_REQUIRE(target >= 0 && static_cast<std::size_t>(target) < n,
                  "adjacency target out of range");
}

double Graph::total_vertex_weight(int c) const {
  MASSF_REQUIRE(c >= 0 && c < ncon_, "constraint index out of range");
  double total = 0;
  for (VertexId v = 0; v < vertex_count(); ++v) total += vertex_weight(v, c);
  return total;
}

double Graph::total_edge_weight() const {
  return std::accumulate(adjwgt_.begin(), adjwgt_.end(), 0.0) / 2.0;
}

Graph Graph::with_arc_weights(std::vector<double> new_adjwgt) const {
  MASSF_REQUIRE(new_adjwgt.size() == adjwgt_.size(),
                "replacement arc weights must match arc count");
  return Graph(xadj_, adjncy_, std::move(new_adjwgt), vwgt_, ncon_);
}

Graph Graph::with_vertex_weights(std::vector<double> new_vwgt,
                                 int new_ncon) const {
  MASSF_REQUIRE(new_ncon >= 1, "need at least one constraint");
  MASSF_REQUIRE(new_vwgt.size() == static_cast<std::size_t>(vertex_count()) *
                                       static_cast<std::size_t>(new_ncon),
                "replacement vertex weights must be n*ncon");
  return Graph(xadj_, adjncy_, adjwgt_, std::move(new_vwgt), new_ncon);
}

GraphBuilder::GraphBuilder(int ncon) : ncon_(ncon) {
  MASSF_REQUIRE(ncon_ >= 1, "builder needs at least one constraint");
}

VertexId GraphBuilder::add_vertex(std::span<const double> weights) {
  MASSF_REQUIRE(weights.empty() ||
                    weights.size() == static_cast<std::size_t>(ncon_),
                "vertex weight span must have ncon=" << ncon_ << " entries");
  std::vector<double> w(static_cast<std::size_t>(ncon_), 0.0);
  std::copy(weights.begin(), weights.end(), w.begin());
  vertex_weights_.push_back(std::move(w));
  return static_cast<VertexId>(vertex_weights_.size() - 1);
}

VertexId GraphBuilder::add_vertex(double weight) {
  return add_vertex(std::span<const double>(&weight, 1));
}

void GraphBuilder::add_edge(VertexId u, VertexId v, double weight) {
  MASSF_REQUIRE(u >= 0 && u < vertex_count(), "edge endpoint u out of range");
  MASSF_REQUIRE(v >= 0 && v < vertex_count(), "edge endpoint v out of range");
  MASSF_REQUIRE(u != v, "self-loops are not supported");
  MASSF_REQUIRE(weight >= 0, "edge weight must be non-negative");
  edges_.push_back({u, v, weight});
}

void GraphBuilder::set_vertex_weights(VertexId v,
                                      std::span<const double> weights) {
  MASSF_REQUIRE(v >= 0 && v < vertex_count(), "vertex out of range");
  MASSF_REQUIRE(weights.size() == static_cast<std::size_t>(ncon_),
                "vertex weight span must have ncon entries");
  std::copy(weights.begin(), weights.end(), vertex_weights_[v].begin());
}

Graph GraphBuilder::build() const {
  const std::size_t n = vertex_weights_.size();

  // Merge parallel edges: sort arc records by (from, to), sum weights.
  struct Arc {
    VertexId from, to;
    double weight;
  };
  std::vector<Arc> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const HalfEdge& e : edges_) {
    arcs.push_back({e.from, e.to, e.weight});
    arcs.push_back({e.to, e.from, e.weight});
  }
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    return a.from != b.from ? a.from < b.from : a.to < b.to;
  });
  std::vector<Arc> merged;
  merged.reserve(arcs.size());
  for (const Arc& a : arcs) {
    if (!merged.empty() && merged.back().from == a.from &&
        merged.back().to == a.to) {
      merged.back().weight += a.weight;
    } else {
      merged.push_back(a);
    }
  }

  std::vector<ArcIndex> xadj(n + 1, 0);
  std::vector<VertexId> adjncy(merged.size());
  std::vector<double> adjwgt(merged.size());
  for (const Arc& a : merged) ++xadj[static_cast<std::size_t>(a.from) + 1];
  for (std::size_t v = 0; v < n; ++v) xadj[v + 1] += xadj[v];
  // merged is already sorted by `from`, so a single pass fills CSR in order.
  for (std::size_t i = 0; i < merged.size(); ++i) {
    adjncy[i] = merged[i].to;
    adjwgt[i] = merged[i].weight;
  }

  std::vector<double> vwgt(n * static_cast<std::size_t>(ncon_));
  for (std::size_t v = 0; v < n; ++v)
    for (int c = 0; c < ncon_; ++c)
      vwgt[v * static_cast<std::size_t>(ncon_) + static_cast<std::size_t>(c)] =
          vertex_weights_[v][static_cast<std::size_t>(c)];

  return Graph(std::move(xadj), std::move(adjncy), std::move(adjwgt),
               std::move(vwgt), ncon_);
}

}  // namespace massf::graph
