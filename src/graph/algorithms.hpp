// Classic traversal and shortest-path algorithms on massf::graph::Graph.
//
// Used by: routing-table construction (Dijkstra over link latency), the
// BFS-hierarchical baseline partitioner, connectivity validation of
// generated topologies, and the greedy k-cluster baseline.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace massf::graph {

/// Result of a single-source shortest-path computation.
struct ShortestPaths {
  /// distance[v] = shortest distance from the source; infinity() if
  /// unreachable.
  std::vector<double> distance;
  /// parent[v] = predecessor of v on one shortest path; -1 for the source
  /// and unreachable vertices.
  std::vector<VertexId> parent;

  static constexpr double infinity() {
    return std::numeric_limits<double>::infinity();
  }

  bool reachable(VertexId v) const {
    return distance[static_cast<std::size_t>(v)] < infinity();
  }

  /// Reconstruct the path source → v (inclusive). Empty if unreachable.
  std::vector<VertexId> path_to(VertexId v) const;
};

/// Dijkstra with per-arc lengths. `arc_length` must have graph.arc_count()
/// entries, all non-negative; pass graph.adjwgt() to use the stored weights.
ShortestPaths dijkstra(const Graph& graph, VertexId source,
                       const std::vector<double>& arc_length);

/// Dijkstra using each arc's stored weight as its length.
ShortestPaths dijkstra(const Graph& graph, VertexId source);

/// BFS order from `source` (only vertices in source's component).
std::vector<VertexId> bfs_order(const Graph& graph, VertexId source);

/// Hop distance from `source` to every vertex (-1 if unreachable).
std::vector<int> bfs_distance(const Graph& graph, VertexId source);

/// component[v] = dense component id in [0, count); returns component count.
int connected_components(const Graph& graph, std::vector<int>& component);

/// Induced subgraph over `vertices` (must be distinct, in-range ids).
/// Vertex i of the result corresponds to vertices[i]; vertex weights and
/// edge weights are copied; edges leaving the vertex set are dropped.
Graph induced_subgraph(const Graph& graph,
                       const std::vector<VertexId>& vertices);

/// True if the graph has exactly one connected component (or is empty).
bool is_connected(const Graph& graph);

}  // namespace massf::graph
