// Dinic max-flow on a small directed flow network.
//
// The paper defines a router's computation weight as "the maximal
// bipartition flow of all traffic flowing through a network node" (§2.2.2):
// split the node's incident links into two sides every possible way and take
// the largest traffic volume that can cross the node. mapping::weights uses
// this solver to evaluate that quantity exactly on each node's local star
// network; it is also generally useful and fully unit-tested.
#pragma once

#include <cstdint>
#include <vector>

namespace massf::graph {

/// Directed flow network with residual arcs; capacities are doubles.
class FlowNetwork {
 public:
  explicit FlowNetwork(int vertex_count);

  int vertex_count() const { return static_cast<int>(head_.size()); }

  /// Add a directed arc u→v with the given capacity (>= 0). Returns an arc
  /// handle usable with flow_on(). A residual arc v→u with capacity 0 is
  /// added automatically.
  int add_arc(int u, int v, double capacity);

  /// Compute the maximum flow from source to sink (Dinic, O(V^2 E)).
  /// May be called once per network instance.
  double max_flow(int source, int sink);

  /// Flow pushed through the arc returned by add_arc (valid after
  /// max_flow()).
  double flow_on(int arc_handle) const;

  /// After max_flow(), returns the source side of a minimum cut:
  /// in_source_side[v] is true iff v is reachable from the source in the
  /// residual network.
  std::vector<bool> min_cut_source_side() const;

 private:
  struct Arc {
    int to;
    int next;          // next arc index in `to`'s... actually in from's list
    double capacity;   // remaining capacity
    double original;   // capacity as added
  };

  bool build_levels(int source, int sink);
  double push(int u, int sink, double limit);

  std::vector<int> head_;   // head of each vertex's arc list (-1 = none)
  std::vector<Arc> arcs_;   // arc i and i^1 are mutual residuals
  std::vector<int> level_;
  std::vector<int> iter_;
  int source_ = -1;
  bool solved_ = false;
};

}  // namespace massf::graph
