// Graph serialization: the METIS text format (interoperates with external
// partitioning tools) and Graphviz DOT export (visual inspection of
// networks and partitions).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace massf::graph {

/// Serialize in METIS graph-file format. Header: "n m fmt ncon" with
/// fmt=011 (vertex + edge weights). Weights are written as integers
/// (rounded, minimum 1) because the METIS format requires them.
std::string write_metis(const Graph& graph);

/// Parse a METIS graph file (the subset written by write_metis: fmt 011,
/// or plain "n m" unweighted headers). Throws std::invalid_argument with a
/// line number on malformed input.
Graph read_metis(const std::string& text);

/// Graphviz DOT export. If `assignment` is non-null (one block id per
/// vertex), vertices are colored by block (12 distinct colors, cycling).
std::string write_dot(const Graph& graph,
                      const std::vector<int>* assignment = nullptr);

}  // namespace massf::graph
