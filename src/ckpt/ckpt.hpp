// Checkpoint container format: a versioned, CRC-checksummed byte stream
// written with an atomic write-rename protocol (DESIGN.md §12).
//
// The format is deliberately dumb: a fixed header (magic, format version,
// payload size, CRC32 of the payload) followed by a flat little-endian
// payload that the kernel/emulator serialize into section-tagged fields.
// Writer buffers the whole payload in memory and commits it in one shot:
// write to `<path>.tmp`, flush, fsync, then rename(2) over `<path>` — so a
// crash at any point during checkpointing leaves either the previous
// snapshot or a complete new one, never a torn file. Reader validates the
// header and CRC up front and then hands out bounds-checked fields; every
// failure throws CkptError with an actionable message naming the file and
// the offending section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace massf::ckpt {

/// Any checkpoint failure: unreadable/corrupt/truncated file, version
/// mismatch, or a payload that does not match the expected section layout.
class CkptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown by the default chaos-test crash hooks (see set_crash_hook) to
/// simulate a process kill at a checkpoint phase boundary.
class InjectedCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// "MSCK" little-endian.
constexpr std::uint32_t kMagic = 0x4b43534du;
/// Bump on any payload layout change; Reader rejects mismatches.
constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size);

/// Test-only crash injection. When set, maybe_crash(phase) invokes the hook
/// with the phase name ("before-checkpoint", "mid-write",
/// "after-checkpoint"); a hook that throws simulates a kill at that point.
/// Install/clear strictly outside run_until — the hook is read without
/// synchronization from whichever thread drives the safepoint.
using CrashHook = std::function<void(const char* phase)>;
void set_crash_hook(CrashHook hook);
void maybe_crash(const char* phase);

/// Append-only payload buffer plus the atomic commit step.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& s);
  /// Section marker; Reader::expect_tag verifies layout drift loudly.
  void tag(std::uint32_t t) { u32(t); }

  std::size_t size() const { return buf_.size(); }
  const std::vector<unsigned char>& payload() const { return buf_; }

  /// Atomically publish header+payload at `path` (tmp write, flush, fsync,
  /// rename). Calls maybe_crash("mid-write") after the tmp file is durable
  /// but before the rename — the window where a kill must not destroy the
  /// previous snapshot.
  void commit(const std::string& path) const;

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked cursor over a validated payload.
class Reader {
 public:
  /// Read and validate a checkpoint file: header magic, format version,
  /// payload size (truncation) and CRC32 (corruption) — each rejection
  /// names the file and what disagreed.
  static Reader from_file(const std::string& path);

  explicit Reader(std::vector<unsigned char> payload, std::string source = "")
      : buf_(std::move(payload)), source_(std::move(source)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  void expect_tag(std::uint32_t t, const char* what);

  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n, const char* what);

  std::vector<unsigned char> buf_;
  std::size_t pos_ = 0;
  std::string source_;
};

/// "ckpt_000000000042.bin" — fixed width so lexical order == numeric order.
std::string checkpoint_filename(std::uint64_t seq);
/// Parse the sequence number out of a checkpoint_filename-shaped name.
bool parse_checkpoint_seq(const std::string& filename, std::uint64_t& seq);
/// All checkpoint files directly under `dir`, sorted ascending by sequence
/// number; each entry is (seq, full path). Missing dir → empty list.
std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir);

}  // namespace massf::ckpt
