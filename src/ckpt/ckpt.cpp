#include "ckpt/ckpt.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MASSF_CKPT_HAVE_FSYNC 1
#endif

namespace massf::ckpt {

namespace {

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Test-only; installed/cleared outside run_until and read from the single
// thread that drives the safepoint hook, so no synchronization.
CrashHook g_crash_hook;

constexpr std::size_t kHeaderSize = 20;  // magic u32, version u32, size u64, crc u32

void put_u32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t get_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = crc_table()[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void set_crash_hook(CrashHook hook) { g_crash_hook = std::move(hook); }

void maybe_crash(const char* phase) {
  if (g_crash_hook) g_crash_hook(phase);
}

void Writer::u32(std::uint32_t v) {
  unsigned char b[4];
  put_u32(b, v);
  buf_.insert(buf_.end(), b, b + 4);
}

void Writer::u64(std::uint64_t v) {
  unsigned char b[8];
  put_u64(b, v);
  buf_.insert(buf_.end(), b, b + 8);
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void Writer::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::commit(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    throw CkptError("checkpoint: cannot open '" + tmp + "' for writing");
  auto fail = [&](const char* what) {
    // massf-lint: allow(unchecked-io) — best-effort cleanup after a failure
    std::fclose(f);
    std::remove(tmp.c_str());
    throw CkptError(std::string("checkpoint: ") + what + " failed for '" +
                    tmp + "'");
  };

  unsigned char header[kHeaderSize];
  put_u32(header, kMagic);
  put_u32(header + 4, kFormatVersion);
  put_u64(header + 8, buf_.size());
  put_u32(header + 16, crc32(buf_.data(), buf_.size()));

  if (std::fwrite(header, 1, sizeof header, f) != sizeof header)
    fail("header write");
  if (!buf_.empty() &&
      std::fwrite(buf_.data(), 1, buf_.size(), f) != buf_.size())
    fail("payload write");
  if (std::fflush(f) != 0) fail("flush");
#ifdef MASSF_CKPT_HAVE_FSYNC
  if (::fsync(::fileno(f)) != 0) fail("fsync");
#endif
  if (std::fclose(f) != 0) {
    // massf-lint: allow(unchecked-io) — best-effort cleanup after a failure
    std::remove(tmp.c_str());
    throw CkptError("checkpoint: close failed for '" + tmp + "'");
  }

  // A kill here must leave the previous snapshot at `path` untouched: only
  // the .tmp file exists in the new version until the rename below.
  maybe_crash("mid-write");

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    // massf-lint: allow(unchecked-io) — best-effort cleanup after a failure
    std::remove(tmp.c_str());
    throw CkptError("checkpoint: rename '" + tmp + "' -> '" + path +
                    "' failed");
  }
}

Reader Reader::from_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw CkptError("checkpoint: cannot open '" + path + "' for reading");
  auto fail = [&](const std::string& what) {
    // massf-lint: allow(unchecked-io) — best-effort cleanup after a failure
    std::fclose(f);
    throw CkptError("checkpoint '" + path + "': " + what);
  };

  unsigned char header[kHeaderSize];
  const std::size_t got_header = std::fread(header, 1, sizeof header, f);
  if (got_header != sizeof header)
    fail("file too short to hold a checkpoint header (" +
         std::to_string(got_header) + " of " + std::to_string(kHeaderSize) +
         " bytes) — truncated or not a checkpoint");
  const std::uint32_t magic = get_u32(header);
  if (magic != kMagic) {
    std::ostringstream os;
    os << "bad magic 0x" << std::hex << magic
       << " (expected 0x" << kMagic << ") — not a massf checkpoint";
    fail(os.str());
  }
  const std::uint32_t version = get_u32(header + 4);
  if (version != kFormatVersion)
    fail("format version " + std::to_string(version) +
         " is not supported (this build reads version " +
         std::to_string(kFormatVersion) + ")");
  const std::uint64_t payload_size = get_u64(header + 8);
  const std::uint32_t expected_crc = get_u32(header + 16);

  std::vector<unsigned char> payload(payload_size);
  const std::size_t got = payload.empty()
                              ? 0
                              : std::fread(payload.data(), 1, payload.size(), f);
  if (got != payload.size())
    fail("truncated: header claims " + std::to_string(payload_size) +
         " payload bytes but only " + std::to_string(got) +
         " are present — discard this snapshot and fall back to an older one");
  if (std::fclose(f) != 0)
    throw CkptError("checkpoint '" + path + "': close failed after read");

  const std::uint32_t actual_crc = crc32(payload.data(), payload.size());
  if (actual_crc != expected_crc) {
    std::ostringstream os;
    os << "checkpoint '" << path << "': CRC mismatch (stored 0x" << std::hex
       << expected_crc << ", computed 0x" << actual_crc
       << ") — the payload is corrupted; discard this snapshot and fall "
          "back to an older one";
    throw CkptError(os.str());
  }
  return Reader(std::move(payload), path);
}

void Reader::need(std::size_t n, const char* what) {
  if (buf_.size() - pos_ < n) {
    std::ostringstream os;
    os << "checkpoint";
    if (!source_.empty()) os << " '" << source_ << "'";
    os << ": payload ended while reading " << what << " at offset " << pos_
       << " (" << (buf_.size() - pos_) << " of " << n
       << " bytes available) — layout mismatch or truncated section";
    throw CkptError(os.str());
  }
}

std::uint8_t Reader::u8() {
  need(1, "u8");
  return buf_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4, "u32");
  const std::uint32_t v = get_u32(buf_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8, "u64");
  const std::uint64_t v = get_u64(buf_.data() + pos_);
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::str() {
  const std::uint64_t n = u64();
  need(n, "string body");
  std::string s(reinterpret_cast<const char*>(buf_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

void Reader::expect_tag(std::uint32_t t, const char* what) {
  const std::size_t at = pos_;
  const std::uint32_t actual = u32();
  if (actual != t) {
    std::ostringstream os;
    os << "checkpoint";
    if (!source_.empty()) os << " '" << source_ << "'";
    os << ": expected section '" << what << "' (tag 0x" << std::hex << t
       << ") at offset " << std::dec << at << " but found tag 0x" << std::hex
       << actual << " — snapshot layout does not match this build";
    throw CkptError(os.str());
  }
}

std::string checkpoint_filename(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "ckpt_%012llu.bin",
                static_cast<unsigned long long>(seq));
  return buf;
}

bool parse_checkpoint_seq(const std::string& filename, std::uint64_t& seq) {
  if (filename.size() != 21 || filename.rfind("ckpt_", 0) != 0 ||
      filename.compare(17, 4, ".bin") != 0)
    return false;
  std::uint64_t v = 0;
  for (std::size_t i = 5; i < 17; ++i) {
    const char c = filename[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  seq = v;
  return true;
}

std::vector<std::pair<std::uint64_t, std::string>> list_checkpoints(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::uint64_t seq = 0;
    if (parse_checkpoint_seq(entry.path().filename().string(), seq))
      out.emplace_back(seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace massf::ckpt
