#include "app/scenario.hpp"

#include <string>

#include "emu/emulator.hpp"
#include "util/error.hpp"

namespace massf::app {

using topology::Mbps;
using topology::milliseconds;
using topology::Network;
using topology::NodeId;

namespace {

constexpr int kBackendsPerRack = 4;
constexpr int kClientsPerRack = 8;

}  // namespace

LbScenario make_lb_scenario(const LbScenarioParams& params) {
  MASSF_REQUIRE(params.backends >= 2, "scenario needs >= 2 backends");
  MASSF_REQUIRE(params.client_hosts >= 1, "scenario needs >= 1 client host");

  LbScenario s;
  Network& net = s.net;
  s.core = net.add_router("core");
  s.backup = net.add_router("backup");
  // Backup path: reachable, but an order of magnitude slower than a rack's
  // direct core uplink — degradation, not partition.
  net.add_link(s.core, s.backup, Mbps(1000), milliseconds(2.0));

  const int backend_racks =
      (params.backends + kBackendsPerRack - 1) / kBackendsPerRack;
  for (int r = 0; r < backend_racks; ++r) {
    const NodeId rack = net.add_router("rackS" + std::to_string(r));
    const topology::LinkId uplink =
        net.add_link(rack, s.core, Mbps(1000), milliseconds(0.5));
    net.add_link(rack, s.backup, Mbps(200), milliseconds(10.0));
    if (r == 0) s.degraded_uplink = uplink;
    for (int k = 0; k < kBackendsPerRack; ++k) {
      const int b = r * kBackendsPerRack + k;
      if (b >= params.backends) break;
      const NodeId host = net.add_host("srv" + std::to_string(b));
      net.add_link(host, rack, Mbps(1000), milliseconds(0.1));
      s.backends.push_back(host);
    }
  }

  const int client_racks =
      (params.client_hosts + kClientsPerRack - 1) / kClientsPerRack;
  for (int r = 0; r < client_racks; ++r) {
    const NodeId rack = net.add_router("rackU" + std::to_string(r));
    net.add_link(rack, s.core, Mbps(1000), milliseconds(0.5));
    for (int k = 0; k < kClientsPerRack; ++k) {
      const int c = r * kClientsPerRack + k;
      if (c >= params.client_hosts) break;
      const NodeId host = net.add_host("cli" + std::to_string(c));
      net.add_link(host, rack, Mbps(1000), milliseconds(0.1));
      s.clients.push_back(host);
    }
  }

  s.lb = net.add_host("lb");
  net.add_link(s.lb, s.core, Mbps(10000), milliseconds(0.1));
  return s;
}

LbWorkload::LbWorkload(const LbScenario& scenario,
                       const LbScenarioParams& params)
    : scenario_(scenario), params_(params) {
  MASSF_REQUIRE(scenario_.lb >= 0 && !scenario_.backends.empty() &&
                    !scenario_.clients.empty(),
                "scenario is not built");
}

void LbWorkload::install(emu::Emulator& emulator) const {
  const int series =
      emulator.register_latency_series(policy_name(params_.policy));

  lb_counters_ = std::make_shared<LbCounters>();
  LoadBalancerParams lb;
  lb.policy = params_.policy;
  lb.policy_config = params_.policy_config;
  lb.backends = scenario_.backends;
  lb.reliable = params_.reliable;
  emulator.install_endpoint(
      scenario_.lb,
      std::make_unique<LoadBalancerEndpoint>(std::move(lb), lb_counters_));

  ServerParams server = params_.server;
  server.reliable = params_.reliable;
  server.seed = mix_seed(params_.seed, 0x737276ULL);
  for (NodeId backend : scenario_.backends)
    emulator.install_endpoint(backend,
                              std::make_unique<ServerEndpoint>(server));

  client_counters_.clear();
  for (std::size_t c = 0; c < scenario_.clients.size(); ++c) {
    ClientParams client;
    client.lb = scenario_.lb;
    client.users = params_.users_per_host;
    client.rate_per_user = params_.rate_per_user;
    client.duration_s = params_.duration_s;
    client.request_bytes = params_.request_bytes;
    client.series = series;
    client.user_base =
        static_cast<std::uint64_t>(c) *
        static_cast<std::uint64_t>(params_.users_per_host);
    client.seed = mix_seed(params_.seed, 0x636c69ULL);
    client.reliable = params_.reliable;
    auto counters = std::make_shared<ClientCounters>();
    client_counters_.push_back(counters);
    emulator.install_endpoint(
        scenario_.clients[c],
        std::make_unique<ClientEndpoint>(std::move(client),
                                         std::move(counters)));
  }
}

std::vector<traffic::NodeId> LbWorkload::injection_points() const {
  std::vector<NodeId> points;
  points.reserve(1 + scenario_.backends.size() + scenario_.clients.size());
  points.push_back(scenario_.lb);
  points.insert(points.end(), scenario_.backends.begin(),
                scenario_.backends.end());
  points.insert(points.end(), scenario_.clients.begin(),
                scenario_.clients.end());
  return points;
}

LbCounters LbWorkload::lb_counters() const {
  return lb_counters_ != nullptr ? *lb_counters_ : LbCounters{};
}

ClientCounters LbWorkload::client_totals() const {
  ClientCounters total;
  for (const auto& c : client_counters_) {
    total.requests_sent += c->requests_sent;
    total.responses_received += c->responses_received;
    total.send_failures += c->send_failures;
    total.stale_responses += c->stale_responses;
  }
  return total;
}

LbRunResult run_lb_scenario(const LbScenario& scenario,
                            const LbScenarioParams& params,
                            const routing::RoutingView& routes, int engines,
                            des::ExecutionMode mode, des::SyncMode sync,
                            const fault::FaultTimeline* timeline,
                            double horizon_s) {
  const Network& net = scenario.net;
  std::vector<int> placement(static_cast<std::size_t>(net.node_count()));
  for (std::size_t i = 0; i < placement.size(); ++i)
    placement[i] = static_cast<int>(i) % engines;

  emu::EmulatorConfig config;
  config.reliable.base_timeout_s = params.reliable_timeout_s;
  config.sync_mode = sync;
  emu::Emulator emulator(net, routes, std::move(placement), engines, config);
  if (timeline != nullptr) emulator.set_fault_timeline(timeline);

  const LbWorkload workload(scenario, params);
  workload.install(emulator);

  // Default horizon: generation window plus drain time for queued work,
  // in-flight responses and retry backoff chains.
  if (horizon_s <= 0) horizon_s = 2.0 * params.duration_s + 10.0;
  emulator.run(horizon_s, mode);

  LbRunResult result;
  result.kernel = emulator.kernel_stats();
  result.stats = emulator.stats();
  result.epochs = emulator.epoch_stats();
  result.latency = emulator.latency_summaries();
  result.lb = workload.lb_counters();
  result.clients = workload.client_totals();
  return result;
}

}  // namespace massf::app
