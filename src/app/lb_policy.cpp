#include "app/lb_policy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace massf::app {

namespace {

constexpr std::uint64_t kRingKeySalt = 0x72696e676bULL;   // "ringk"
constexpr std::uint64_t kMaglevSkipSalt = 0x6d67736bULL;  // "mgsk"
constexpr std::uint64_t kMaglevKeySalt = 0x6d676b79ULL;   // "mgky"

class RoundRobin final : public LbPolicy {
 public:
  explicit RoundRobin(std::vector<std::uint64_t> ids)
      : LbPolicy(std::move(ids)) {}

  const char* name() const override { return policy_name(PolicyKind::RoundRobin); }

  std::size_t pick(std::uint64_t key, double now) override {
    (void)key;
    (void)now;
    const std::size_t chosen = next_;
    next_ = (next_ + 1) % backend_ids_.size();
    return chosen;
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    out.push_back(next_);
  }
  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == 1, "round-robin state is one word");
    next_ = in[0] % backend_ids_.size();
  }

 private:
  std::size_t next_ = 0;
};

class LeastRequest final : public LbPolicy {
 public:
  explicit LeastRequest(std::vector<std::uint64_t> ids)
      : LbPolicy(std::move(ids)), outstanding_(backend_ids_.size(), 0) {}

  const char* name() const override {
    return policy_name(PolicyKind::LeastRequest);
  }

  std::size_t pick(std::uint64_t key, double now) override {
    (void)key;
    (void)now;
    // Argmin over outstanding requests; strict < keeps the lowest index on
    // ties, so the choice is deterministic.
    std::size_t best = 0;
    for (std::size_t b = 1; b < outstanding_.size(); ++b)
      if (outstanding_[b] < outstanding_[best]) best = b;
    return best;
  }

  void on_start(std::size_t backend, double now) override {
    (void)now;
    ++outstanding_[backend];
  }
  void on_finish(std::size_t backend, double now, double latency_s) override {
    (void)now;
    (void)latency_s;
    if (outstanding_[backend] > 0) --outstanding_[backend];
  }
  void on_error(std::size_t backend, double now) override {
    (void)now;
    if (outstanding_[backend] > 0) --outstanding_[backend];
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    for (std::int64_t v : outstanding_)
      out.push_back(static_cast<std::uint64_t>(v));
  }
  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == outstanding_.size(),
                  "least-request state is one word per backend");
    for (std::size_t b = 0; b < in.size(); ++b)
      outstanding_[b] = static_cast<std::int64_t>(in[b]);
  }

 private:
  std::vector<std::int64_t> outstanding_;
};

/// Peak-EWMA (Finagle style): the latency estimate jumps to any observation
/// above it ("peak") and otherwise decays exponentially toward zero with
/// time constant tau — so a backend that degrades is avoided immediately,
/// and re-probed a few tau after it stops producing slow responses. The
/// pick cost multiplies the decayed estimate by (outstanding + 1), folding
/// in queue depth the way least-request does.
class PeakEwma final : public LbPolicy {
 public:
  PeakEwma(std::vector<std::uint64_t> ids, const PolicyConfig& config)
      : LbPolicy(std::move(ids)),
        tau_(config.ewma_tau_s),
        initial_(config.ewma_initial_s),
        state_(backend_ids_.size()) {
    MASSF_REQUIRE(tau_ > 0, "peak-EWMA needs a positive time constant");
  }

  const char* name() const override { return policy_name(PolicyKind::PeakEwma); }

  std::size_t pick(std::uint64_t key, double now) override {
    (void)key;
    std::size_t best = 0;
    double best_cost = cost(0, now);
    for (std::size_t b = 1; b < state_.size(); ++b) {
      const double c = cost(b, now);
      if (c < best_cost) {
        best = b;
        best_cost = c;
      }
    }
    return best;
  }

  void on_start(std::size_t backend, double now) override {
    (void)now;
    ++state_[backend].outstanding;
  }

  void on_finish(std::size_t backend, double now, double latency_s) override {
    Backend& b = state_[backend];
    if (b.outstanding > 0) --b.outstanding;
    b.ewma_s = std::max(latency_s, decayed(b, now));
    b.stamp_s = now;
  }

  void on_error(std::size_t backend, double now) override {
    // A failed request is observed as a response slower than anything the
    // backend has produced: double the current estimate (floor one tau's
    // worth of seconds) so errors repel traffic as hard as slowness does.
    Backend& b = state_[backend];
    if (b.outstanding > 0) --b.outstanding;
    const double prev = decayed(b, now);
    b.ewma_s = std::max(prev * 2.0, tau_);
    b.stamp_s = now;
  }

  void save_state(std::vector<std::uint64_t>& out) const override {
    for (const Backend& b : state_) {
      out.push_back(bit_cast_u64(b.ewma_s));
      out.push_back(bit_cast_u64(b.stamp_s));
      out.push_back(static_cast<std::uint64_t>(b.outstanding));
    }
  }
  void load_state(const std::vector<std::uint64_t>& in) override {
    MASSF_REQUIRE(in.size() == 3 * state_.size(),
                  "peak-EWMA state is three words per backend");
    for (std::size_t b = 0; b < state_.size(); ++b) {
      state_[b].ewma_s = bit_cast_f64(in[3 * b]);
      state_[b].stamp_s = bit_cast_f64(in[3 * b + 1]);
      state_[b].outstanding = static_cast<std::int64_t>(in[3 * b + 2]);
    }
  }

 private:
  struct Backend {
    double ewma_s = -1;  // < 0: no observation yet
    double stamp_s = 0;
    std::int64_t outstanding = 0;
  };

  double decayed(const Backend& b, double now) const {
    if (b.ewma_s < 0) return initial_;
    return b.ewma_s * std::exp(-(now - b.stamp_s) / tau_);
  }

  double cost(std::size_t backend, double now) const {
    const Backend& b = state_[backend];
    return decayed(b, now) * static_cast<double>(b.outstanding + 1);
  }

  static std::uint64_t bit_cast_u64(double v) {
    std::uint64_t word;
    static_assert(sizeof(word) == sizeof(v));
    __builtin_memcpy(&word, &v, sizeof(word));
    return word;
  }
  static double bit_cast_f64(std::uint64_t word) {
    double v;
    __builtin_memcpy(&v, &word, sizeof(v));
    return v;
  }

  double tau_;
  double initial_;
  std::vector<Backend> state_;
};

/// Consistent hashing on a sorted ring of backend vnodes. Vnode positions
/// are derived from the backend's stable *id* (not its index), so a policy
/// rebuilt over a backend subset keeps every surviving id's vnodes exactly
/// where they were — removing one of n backends remaps only ~1/n of keys.
class RingHash final : public LbPolicy {
 public:
  RingHash(std::vector<std::uint64_t> ids, const PolicyConfig& config)
      : LbPolicy(std::move(ids)), seed_(config.seed) {
    MASSF_REQUIRE(config.ring_vnodes >= 1, "ring needs >= 1 vnode/backend");
    ring_.reserve(backend_ids_.size() *
                  static_cast<std::size_t>(config.ring_vnodes));
    for (std::size_t b = 0; b < backend_ids_.size(); ++b) {
      const std::uint64_t base = mix_seed(seed_, backend_ids_[b]);
      for (int v = 0; v < config.ring_vnodes; ++v)
        ring_.push_back({mix_seed(base, static_cast<std::uint64_t>(v)), b});
    }
    std::sort(ring_.begin(), ring_.end());
  }

  const char* name() const override { return policy_name(PolicyKind::RingHash); }

  std::size_t pick(std::uint64_t key, double now) override {
    (void)now;
    const std::uint64_t h = mix_seed(seed_ ^ kRingKeySalt, key);
    // First vnode clockwise from the key's position, wrapping at the top.
    const auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const Vnode& v, std::uint64_t value) { return v.hash < value; });
    return it != ring_.end() ? it->backend : ring_.front().backend;
  }

 private:
  struct Vnode {
    std::uint64_t hash = 0;
    std::size_t backend = 0;
    bool operator<(const Vnode& other) const {
      return hash != other.hash ? hash < other.hash
                                : backend < other.backend;
    }
  };

  std::uint64_t seed_;
  std::vector<Vnode> ring_;
};

/// Maglev hashing: each backend fills a prime-sized lookup table through
/// its own permutation of the slots; slots are claimed round-robin, so the
/// table is balanced within one slot and mostly stable when a backend
/// leaves (its slots are re-claimed, everyone else's stay).
class Maglev final : public LbPolicy {
 public:
  Maglev(std::vector<std::uint64_t> ids, const PolicyConfig& config)
      : LbPolicy(std::move(ids)),
        seed_(config.seed),
        table_(static_cast<std::size_t>(config.maglev_table_size)) {
    const std::size_t m = table_.size();
    const std::size_t n = backend_ids_.size();
    MASSF_REQUIRE(m > n,
                  "maglev table must be larger than the backend set "
                  "(and prime for the permutations to cover it)");
    std::vector<std::size_t> offset(n), skip(n), next(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
      offset[b] = mix_seed(seed_, backend_ids_[b]) % m;
      skip[b] = mix_seed(seed_ ^ kMaglevSkipSalt, backend_ids_[b]) % (m - 1) +
                1;
    }
    std::fill(table_.begin(), table_.end(), n);  // n = unclaimed
    std::size_t filled = 0;
    while (filled < m) {
      for (std::size_t b = 0; b < n && filled < m; ++b) {
        std::size_t slot = (offset[b] + next[b] * skip[b]) % m;
        while (table_[slot] != n) {
          ++next[b];
          slot = (offset[b] + next[b] * skip[b]) % m;
        }
        table_[slot] = b;
        ++next[b];
        ++filled;
      }
    }
  }

  const char* name() const override { return policy_name(PolicyKind::Maglev); }

  std::size_t pick(std::uint64_t key, double now) override {
    (void)now;
    return table_[mix_seed(seed_ ^ kMaglevKeySalt, key) % table_.size()];
  }

 private:
  std::uint64_t seed_;
  std::vector<std::size_t> table_;
};

}  // namespace

LbPolicy::LbPolicy(std::vector<std::uint64_t> backend_ids)
    : backend_ids_(std::move(backend_ids)) {
  MASSF_REQUIRE(!backend_ids_.empty(), "policy needs at least one backend");
}

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::RoundRobin:
      return "round-robin";
    case PolicyKind::LeastRequest:
      return "least-request";
    case PolicyKind::PeakEwma:
      return "peak-ewma";
    case PolicyKind::RingHash:
      return "ring-hash";
    case PolicyKind::Maglev:
      return "maglev";
  }
  return "unknown";
}

std::unique_ptr<LbPolicy> make_policy(PolicyKind kind,
                                      std::vector<std::uint64_t> backend_ids,
                                      const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::RoundRobin:
      return std::make_unique<RoundRobin>(std::move(backend_ids));
    case PolicyKind::LeastRequest:
      return std::make_unique<LeastRequest>(std::move(backend_ids));
    case PolicyKind::PeakEwma:
      return std::make_unique<PeakEwma>(std::move(backend_ids), config);
    case PolicyKind::RingHash:
      return std::make_unique<RingHash>(std::move(backend_ids), config);
    case PolicyKind::Maglev:
      return std::make_unique<Maglev>(std::move(backend_ids), config);
  }
  MASSF_REQUIRE(false, "unknown policy kind");
  return nullptr;
}

}  // namespace massf::app
