#include "app/rpc.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace massf::app {

namespace {

std::uint64_t u64_of_f64(double v) {
  std::uint64_t word;
  static_assert(sizeof(word) == sizeof(v));
  __builtin_memcpy(&word, &v, sizeof(word));
  return word;
}

double f64_of_u64(std::uint64_t word) {
  double v;
  __builtin_memcpy(&v, &word, sizeof(v));
  return v;
}

}  // namespace

// ---- ServerEndpoint --------------------------------------------------------

ServerEndpoint::ServerEndpoint(ServerParams params)
    : params_(std::move(params)) {
  MASSF_REQUIRE(params_.workers >= 1, "server needs >= 1 worker");
  MASSF_REQUIRE(params_.mean_s > 0, "service mean must be positive");
  MASSF_REQUIRE(params_.pareto_shape > 1,
                "pareto shape must exceed 1 so the mean exists");
  worker_free_.assign(static_cast<std::size_t>(params_.workers), 0.0);
}

void ServerEndpoint::start(emu::AppApi& api) {
  // Per-host stream: two servers with the same params draw independently.
  rng_.reseed(mix_seed(params_.seed, static_cast<std::uint64_t>(api.self())));
  jobs_.reserve(64);
}

double ServerEndpoint::draw_service() {
  switch (params_.dist) {
    case ServiceDist::Deterministic:
      return params_.mean_s;
    case ServiceDist::Exponential:
      return rng_.next_exponential(params_.mean_s);
    case ServiceDist::Pareto: {
      // Pareto(shape a, scale s) has mean a·s/(a−1); invert for mean_s.
      const double scale =
          params_.mean_s * (params_.pareto_shape - 1) / params_.pareto_shape;
      return rng_.next_pareto(params_.pareto_shape, scale);
    }
  }
  return params_.mean_s;
}

void ServerEndpoint::receive(emu::AppApi& api,
                             const emu::AppMessage& message) {
  MASSF_REQUIRE(message.tag == kTagRequest,
                "server received a non-request message");
  // Earliest-free worker, lowest index on ties: FIFO queueing whose delay
  // grows with backlog — the signal load-aware policies exploit.
  std::size_t worker = 0;
  for (std::size_t w = 1; w < worker_free_.size(); ++w)
    if (worker_free_[w] < worker_free_[worker]) worker = w;
  const double now = api.now();
  const double begin = std::max(now, worker_free_[worker]);
  const double done = begin + draw_service();
  worker_free_[worker] = done;
  const std::uint64_t job = ++job_seq_;
  // massf-analyze: allow(hot-path-alloc) — bounded by in-flight jobs; the
  // table is reserve()d at start and rehash cost is amortized O(1).
  jobs_.emplace(job, Job{message.src, message.corr});
  api.set_timer(done - now, static_cast<std::int64_t>(job));
}

void ServerEndpoint::on_timer(emu::AppApi& api, std::int64_t tag) {
  const auto it = jobs_.find(static_cast<std::uint64_t>(tag));
  MASSF_REQUIRE(it != jobs_.end(), "server timer for unknown job");
  const Job job = it->second;
  jobs_.erase(it);
  if (params_.reliable)
    api.send_reliable(job.reply_to, params_.response_bytes, kTagResponse,
                      job.corr);
  else
    api.send(job.reply_to, params_.response_bytes, kTagResponse, job.corr);
}

void ServerEndpoint::save_state(std::vector<std::uint64_t>& out) const {
  for (std::uint64_t w : rng_.state()) out.push_back(w);
  out.push_back(job_seq_);
  for (double f : worker_free_) out.push_back(u64_of_f64(f));
  // Hash-map iteration order is nondeterministic; serialize sorted by key.
  std::vector<std::pair<std::uint64_t, Job>> jobs(jobs_.begin(), jobs_.end());
  std::sort(jobs.begin(), jobs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.push_back(jobs.size());
  for (const auto& [seq, job] : jobs) {
    out.push_back(seq);
    out.push_back(static_cast<std::uint64_t>(job.reply_to));
    out.push_back(job.corr);
  }
}

void ServerEndpoint::load_state(const std::vector<std::uint64_t>& in) {
  std::size_t i = 0;
  const auto next = [&] {
    MASSF_REQUIRE(i < in.size(), "server snapshot state truncated");
    return in[i++];
  };
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& w : rng_state) w = next();
  rng_.set_state(rng_state);
  job_seq_ = next();
  for (double& f : worker_free_) f = f64_of_u64(next());
  const std::uint64_t jobs = next();
  jobs_.clear();
  for (std::uint64_t j = 0; j < jobs; ++j) {
    const std::uint64_t seq = next();
    Job job;
    job.reply_to = static_cast<NodeId>(next());
    job.corr = next();
    jobs_.emplace(seq, job);
  }
  MASSF_REQUIRE(i == in.size(), "server snapshot state has extra words");
}

// ---- LoadBalancerEndpoint --------------------------------------------------

LoadBalancerEndpoint::LoadBalancerEndpoint(
    LoadBalancerParams params, std::shared_ptr<LbCounters> counters)
    : params_(std::move(params)), counters_(std::move(counters)) {
  MASSF_REQUIRE(!params_.backends.empty(), "load balancer needs backends");
  std::vector<std::uint64_t> ids;
  ids.reserve(params_.backends.size());
  for (NodeId backend : params_.backends)
    ids.push_back(static_cast<std::uint64_t>(backend));
  policy_ = make_policy(params_.policy, std::move(ids), params_.policy_config);
  if (counters_ == nullptr) counters_ = std::make_shared<LbCounters>();
}

void LoadBalancerEndpoint::start(emu::AppApi& api) {
  (void)api;
  inflight_.reserve(256);
}

// massf-analyze: hot-path-root
void LoadBalancerEndpoint::receive(emu::AppApi& api,
                                   const emu::AppMessage& message) {
  const double now = api.now();
  if (message.tag == kTagRequest) {
    // Key on (client host, user id) so affinity policies distinguish the
    // whole simulated user population, not just the client hosts.
    const std::uint64_t key =
        mix_seed(static_cast<std::uint64_t>(message.src),
                 corr_user(message.corr));
    const std::size_t backend = policy_->pick(key, now);
    const std::uint64_t flight = ++flight_seq_;
    // massf-analyze: allow(hot-path-alloc) — bounded by in-flight requests;
    // the table is reserve()d at start.
    inflight_.emplace(flight,
                      Flight{message.src, message.corr, message.bytes, now,
                             static_cast<std::uint32_t>(backend)});
    policy_->on_start(backend, now);
    ++counters_->requests_forwarded;
    if (params_.reliable)
      api.send_reliable(params_.backends[backend], message.bytes, kTagRequest,
                        flight);
    else
      api.send(params_.backends[backend], message.bytes, kTagRequest, flight);
    return;
  }
  MASSF_REQUIRE(message.tag == kTagResponse,
                "load balancer received a non-RPC message");
  const auto it = inflight_.find(message.corr);
  if (it == inflight_.end()) {
    // The flight was written off (reliable retries exhausted on lost ACKs)
    // but a copy of the request had been delivered anyway.
    ++counters_->stale_responses;
    return;
  }
  const Flight flight = it->second;
  inflight_.erase(it);
  policy_->on_finish(flight.backend, now, now - flight.t0);
  ++counters_->responses_relayed;
  if (params_.reliable)
    api.send_reliable(flight.client, message.bytes, kTagResponse,
                      flight.client_corr);
  else
    api.send(flight.client, message.bytes, kTagResponse, flight.client_corr);
}

void LoadBalancerEndpoint::on_send_failed(emu::AppApi& api,
                                          const emu::AppMessage& message) {
  if (message.tag == kTagResponse) {
    // LB → client relay failed; the flight is already closed.
    ++counters_->relay_errors;
    return;
  }
  const auto it = inflight_.find(message.corr);
  if (it == inflight_.end()) return;
  policy_->on_error(it->second.backend, api.now());
  inflight_.erase(it);
  ++counters_->backend_errors;
}

void LoadBalancerEndpoint::save_state(std::vector<std::uint64_t>& out) const {
  out.push_back(flight_seq_);
  std::vector<std::uint64_t> policy_words;
  policy_->save_state(policy_words);
  out.push_back(policy_words.size());
  for (std::uint64_t w : policy_words) out.push_back(w);
  std::vector<std::pair<std::uint64_t, Flight>> flights(inflight_.begin(),
                                                        inflight_.end());
  std::sort(flights.begin(), flights.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.push_back(flights.size());
  for (const auto& [seq, f] : flights) {
    out.push_back(seq);
    out.push_back(static_cast<std::uint64_t>(f.client));
    out.push_back(f.client_corr);
    out.push_back(u64_of_f64(f.bytes));
    out.push_back(u64_of_f64(f.t0));
    out.push_back(f.backend);
  }
  out.push_back(counters_->requests_forwarded);
  out.push_back(counters_->responses_relayed);
  out.push_back(counters_->backend_errors);
  out.push_back(counters_->relay_errors);
  out.push_back(counters_->stale_responses);
}

void LoadBalancerEndpoint::load_state(const std::vector<std::uint64_t>& in) {
  std::size_t i = 0;
  const auto next = [&] {
    MASSF_REQUIRE(i < in.size(), "LB snapshot state truncated");
    return in[i++];
  };
  flight_seq_ = next();
  std::vector<std::uint64_t> policy_words(next());
  for (std::uint64_t& w : policy_words) w = next();
  policy_->load_state(policy_words);
  const std::uint64_t flights = next();
  inflight_.clear();
  for (std::uint64_t n = 0; n < flights; ++n) {
    const std::uint64_t seq = next();
    Flight f;
    f.client = static_cast<NodeId>(next());
    f.client_corr = next();
    f.bytes = f64_of_u64(next());
    f.t0 = f64_of_u64(next());
    f.backend = static_cast<std::uint32_t>(next());
    inflight_.emplace(seq, f);
  }
  counters_->requests_forwarded = next();
  counters_->responses_relayed = next();
  counters_->backend_errors = next();
  counters_->relay_errors = next();
  counters_->stale_responses = next();
  MASSF_REQUIRE(i == in.size(), "LB snapshot state has extra words");
}

// ---- ClientEndpoint --------------------------------------------------------

ClientEndpoint::ClientEndpoint(ClientParams params,
                               std::shared_ptr<ClientCounters> counters)
    : params_(std::move(params)), counters_(std::move(counters)) {
  MASSF_REQUIRE(params_.lb >= 0, "client needs a load-balancer host");
  MASSF_REQUIRE(params_.users >= 1, "client aggregates >= 1 user");
  MASSF_REQUIRE(params_.rate_per_user > 0, "request rate must be positive");
  MASSF_REQUIRE(params_.duration_s > 0, "duration must be positive");
  if (counters_ == nullptr) counters_ = std::make_shared<ClientCounters>();
}

void ClientEndpoint::start(emu::AppApi& api) {
  rng_.reseed(mix_seed(params_.seed, static_cast<std::uint64_t>(api.self())));
  outstanding_.reserve(256);
  arm_next(api);
}

void ClientEndpoint::arm_next(emu::AppApi& api) {
  // Superposed Poisson arrivals: rate = users × rate_per_user, so one
  // exponential-gap timer chain stands in for the whole user population.
  const double rate =
      static_cast<double>(params_.users) * params_.rate_per_user;
  const double gap = rng_.next_exponential(1.0 / rate);
  if (api.now() + gap <= params_.duration_s) api.set_timer(gap, 0);
}

void ClientEndpoint::on_timer(emu::AppApi& api, std::int64_t tag) {
  (void)tag;
  const std::uint64_t user =
      params_.user_base +
      rng_.next_below(static_cast<std::uint64_t>(params_.users));
  const std::uint64_t corr = pack_corr(user, seq_++);
  // massf-analyze: allow(hot-path-alloc) — bounded by in-flight requests;
  // the table is reserve()d at start.
  outstanding_.emplace(corr, api.now());
  ++counters_->requests_sent;
  if (params_.reliable)
    api.send_reliable(params_.lb, params_.request_bytes, kTagRequest, corr);
  else
    api.send(params_.lb, params_.request_bytes, kTagRequest, corr);
  arm_next(api);
}

// massf-analyze: determinism-root
void ClientEndpoint::receive(emu::AppApi& api,
                             const emu::AppMessage& message) {
  MASSF_REQUIRE(message.tag == kTagResponse,
                "client received a non-response message");
  const auto it = outstanding_.find(message.corr);
  if (it == outstanding_.end()) {
    ++counters_->stale_responses;
    return;
  }
  api.record_latency(params_.series, api.now() - it->second);
  outstanding_.erase(it);
  ++counters_->responses_received;
}

void ClientEndpoint::on_send_failed(emu::AppApi& api,
                                    const emu::AppMessage& message) {
  (void)api;
  if (message.tag != kTagRequest) return;
  const auto it = outstanding_.find(message.corr);
  if (it == outstanding_.end()) return;
  outstanding_.erase(it);
  ++counters_->send_failures;
}

void ClientEndpoint::save_state(std::vector<std::uint64_t>& out) const {
  for (std::uint64_t w : rng_.state()) out.push_back(w);
  out.push_back(seq_);
  std::vector<std::pair<std::uint64_t, double>> pending(outstanding_.begin(),
                                                        outstanding_.end());
  std::sort(pending.begin(), pending.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out.push_back(pending.size());
  for (const auto& [corr, t0] : pending) {
    out.push_back(corr);
    out.push_back(u64_of_f64(t0));
  }
  out.push_back(counters_->requests_sent);
  out.push_back(counters_->responses_received);
  out.push_back(counters_->send_failures);
  out.push_back(counters_->stale_responses);
}

void ClientEndpoint::load_state(const std::vector<std::uint64_t>& in) {
  std::size_t i = 0;
  const auto next = [&] {
    MASSF_REQUIRE(i < in.size(), "client snapshot state truncated");
    return in[i++];
  };
  std::array<std::uint64_t, 4> rng_state{};
  for (std::uint64_t& w : rng_state) w = next();
  rng_.set_state(rng_state);
  seq_ = next();
  const std::uint64_t pending = next();
  outstanding_.clear();
  for (std::uint64_t n = 0; n < pending; ++n) {
    const std::uint64_t corr = next();
    outstanding_.emplace(corr, f64_of_u64(next()));
  }
  counters_->requests_sent = next();
  counters_->responses_received = next();
  counters_->send_failures = next();
  counters_->stale_responses = next();
  MASSF_REQUIRE(i == in.size(), "client snapshot state has extra words");
}

}  // namespace massf::app
