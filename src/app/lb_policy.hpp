// Load-balancing policy strategies for the front-end LoadBalancer host
// (src/app/rpc.hpp).
//
// A policy sees the request stream through three upcalls — pick (choose a
// backend), on_start (request dispatched), on_finish/on_error (response or
// failure observed) — and never touches the emulator directly, so the same
// implementations can be unit-tested without a network. All state is owned
// by the LoadBalancer endpoint's host and mutated only on that host's
// engine, keeping threaded runs race-free by the same argument as every
// other endpoint (DESIGN.md §14).
//
// Determinism rules: no RNG in steady state (hashing uses the seeded
// mix_seed chain), all tie-breaks by lowest backend index, and pick/on_*
// bodies are allocation-free so they stay clean under the hot-path-alloc
// analyzer closure rooted at the kernel dispatch loop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace massf::app {

enum class PolicyKind : std::uint8_t {
  RoundRobin,    // rotate through backends
  LeastRequest,  // fewest outstanding requests
  PeakEwma,      // lowest (peak-decaying EWMA latency) × (outstanding + 1)
  RingHash,      // consistent hashing on a vnode ring (key affinity)
  Maglev,        // Maglev permutation-table consistent hashing
};

const char* policy_name(PolicyKind kind);

struct PolicyConfig {
  /// Peak-EWMA latency decay time constant (seconds).
  double ewma_tau_s = 1.0;
  /// Cold-start latency estimate for backends with no samples yet (keeps
  /// peak-EWMA from dogpiling one untried backend forever).
  double ewma_initial_s = 0.0;
  /// Virtual nodes per backend on the ring.
  int ring_vnodes = 64;
  /// Maglev lookup-table size; must be prime and > backends.
  int maglev_table_size = 65537;
  /// Seed for the hash chains (ring placement, maglev permutations).
  std::uint64_t seed = 0x6c625f706f6cULL;  // "lb_pol"
};

/// Strategy interface. Backends are identified to the policy by stable
/// 64-bit ids fixed at construction; pick() returns an *index* into that
/// id vector. Consistent-hash policies place ids (not indices) on the
/// ring/table, so rebuilding a policy over a backend subset preserves the
/// assignment of keys whose backend survived — the minimal-disruption
/// property the unit tests pin down.
class LbPolicy {
 public:
  virtual ~LbPolicy() = default;

  virtual const char* name() const = 0;

  /// Choose a backend index for a request key at sim time `now`.
  virtual std::size_t pick(std::uint64_t key, double now) = 0;

  /// A request was dispatched to `backend`.
  virtual void on_start(std::size_t backend, double now) {
    (void)backend;
    (void)now;
  }

  /// Its response came back after `latency_s`.
  virtual void on_finish(std::size_t backend, double now, double latency_s) {
    (void)backend;
    (void)now;
    (void)latency_s;
  }

  /// The request failed (reliable-delivery retry budget exhausted).
  virtual void on_error(std::size_t backend, double now) {
    (void)backend;
    (void)now;
  }

  std::size_t backend_count() const { return backend_ids_.size(); }
  const std::vector<std::uint64_t>& backend_ids() const {
    return backend_ids_;
  }

  /// Checkpoint support, mirroring AppEndpoint::save_state/load_state:
  /// mutable policy state as opaque 64-bit words (doubles bit-cast).
  virtual void save_state(std::vector<std::uint64_t>& out) const {
    (void)out;
  }
  virtual void load_state(const std::vector<std::uint64_t>& in) { (void)in; }

 protected:
  explicit LbPolicy(std::vector<std::uint64_t> backend_ids);

  std::vector<std::uint64_t> backend_ids_;
};

/// Build a policy over the given stable backend ids.
std::unique_ptr<LbPolicy> make_policy(PolicyKind kind,
                                      std::vector<std::uint64_t> backend_ids,
                                      const PolicyConfig& config = {});

}  // namespace massf::app
