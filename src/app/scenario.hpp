// Canonical two-tier load-balancing scenario shared by tests and the
// policy-shootout bench (bench/bench_lb_policies.cpp).
//
// Topology: a core router with backend racks (fast core uplink) that are
// also reachable over a slow backup router — so cutting one rack's core
// uplink mid-run (a fault-plan link outage on `degraded_uplink`) degrades
// that rack's backends to a high-latency, low-bandwidth path instead of
// killing them. Latency-aware policies should route around the degraded
// rack; oblivious round-robin keeps paying the detour, which is exactly
// the p99 gap the bench gate asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "app/rpc.hpp"
#include "des/kernel.hpp"
#include "fault/fault.hpp"
#include "routing/routing.hpp"
#include "topology/network.hpp"
#include "traffic/workload.hpp"

namespace massf::app {

struct LbScenarioParams {
  // ---- Topology shape -----------------------------------------------------
  int backends = 8;          // backend hosts, 4 per rack
  int client_hosts = 8;      // client hosts, 8 per client rack
  // ---- Offered load (open-loop) ------------------------------------------
  int users_per_host = 100;  // simulated users aggregated per client host
  double rate_per_user = 1.0;
  double duration_s = 10.0;
  double request_bytes = 512;
  // ---- Behavior -----------------------------------------------------------
  ServerParams server{};
  PolicyKind policy = PolicyKind::RoundRobin;
  PolicyConfig policy_config{};
  bool reliable = true;
  double reliable_timeout_s = 0.25;  // base retransmit timeout (ms-scale RTTs)
  std::uint64_t seed = 0x6c62736365ULL;  // "lbsce"

  int total_users() const { return client_hosts * users_per_host; }
};

/// The built scenario: topology plus the node roles the workload and fault
/// plans need.
struct LbScenario {
  topology::Network net;
  topology::NodeId lb = -1;
  topology::NodeId core = -1;
  topology::NodeId backup = -1;
  std::vector<topology::NodeId> backends;
  std::vector<topology::NodeId> clients;
  /// Rack-0 → core uplink; a link outage here is the canonical mid-run
  /// degradation (rack 0 reroutes via the slow backup path).
  topology::LinkId degraded_uplink = -1;
};

LbScenario make_lb_scenario(const LbScenarioParams& params);

/// Workload installing one LoadBalancerEndpoint, one ServerEndpoint per
/// backend, and one ClientEndpoint per client host. install() registers a
/// latency series named after the policy and resets the run counters, so
/// one LbWorkload can drive several emulators back to back.
class LbWorkload : public traffic::Workload {
 public:
  LbWorkload(const LbScenario& scenario, const LbScenarioParams& params);

  void install(emu::Emulator& emulator) const override;
  std::vector<traffic::NodeId> injection_points() const override;
  double duration() const override { return params_.duration_s; }

  /// Post-run counters (valid after the emulator the workload was last
  /// installed into has finished running).
  LbCounters lb_counters() const;
  ClientCounters client_totals() const;

 private:
  LbScenario scenario_;
  LbScenarioParams params_;
  mutable std::shared_ptr<LbCounters> lb_counters_;
  mutable std::vector<std::shared_ptr<ClientCounters>> client_counters_;
};

/// One full run of the scenario under explicit kernel modes; the helper
/// tests and the bench share so their runs are comparable event-for-event.
struct LbRunResult {
  des::KernelStats kernel;
  emu::EmulatorStats stats;
  std::vector<emu::EpochStats> epochs;
  std::vector<emu::LatencySummary> latency;
  LbCounters lb;
  ClientCounters clients;
};

LbRunResult run_lb_scenario(const LbScenario& scenario,
                            const LbScenarioParams& params,
                            const routing::RoutingView& routes, int engines,
                            des::ExecutionMode mode, des::SyncMode sync,
                            const fault::FaultTimeline* timeline = nullptr,
                            double horizon_s = 0);

}  // namespace massf::app
