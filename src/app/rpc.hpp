// RPC-style request/response application layer (DESIGN.md §14).
//
// Three endpoint roles on top of the emu::AppEndpoint framework:
//
//   ClientEndpoint        open-loop Poisson request generator (one endpoint
//                         aggregates many simulated users by superposition);
//   LoadBalancerEndpoint  front-end that forwards each request to a backend
//                         chosen by a pluggable LbPolicy and relays the
//                         response back to the requesting client;
//   ServerEndpoint        backend with a fixed-size worker pool and a
//                         seeded service-time distribution.
//
// Request/response matching rides AppMessage::corr end-to-end; each hop
// rewrites corr to its own key (client user|seq → LB flight seq → back),
// so the layer works unchanged over lossy reliable delivery where a
// retransmitted request must still match its response. All per-endpoint
// state lives on the endpoint's host and is touched only on that host's
// engine — the same race-freedom argument as every traffic model.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "app/lb_policy.hpp"
#include "emu/app.hpp"
#include "util/rng.hpp"

namespace massf::app {

using emu::NodeId;

/// Message tags of the RPC layer (disjoint from the traffic models' tags).
constexpr int kTagRequest = 400;
constexpr int kTagResponse = 401;

/// Client corr layout: user id in the high bits, per-host sequence number
/// in the low bits. The LB hashes the user field for key-affinity policies
/// (ring-hash/maglev) while the client matches responses by the full corr.
constexpr int kUserShift = 40;
constexpr std::uint64_t kSeqMask = (std::uint64_t{1} << kUserShift) - 1;

inline std::uint64_t pack_corr(std::uint64_t user, std::uint64_t seq) {
  return (user << kUserShift) | (seq & kSeqMask);
}
inline std::uint64_t corr_user(std::uint64_t corr) {
  return corr >> kUserShift;
}

/// Service-time distribution of a backend worker.
enum class ServiceDist : std::uint8_t {
  Deterministic,  // exactly mean_s
  Exponential,    // Exp(mean_s)
  Pareto,         // heavy-tailed, mean mean_s, tail index pareto_shape
};

struct ServerParams {
  ServiceDist dist = ServiceDist::Exponential;
  /// Mean service time of one request (seconds).
  double mean_s = 2e-3;
  /// Pareto tail index (> 1 so the mean exists); scale is derived so the
  /// distribution's mean equals mean_s.
  double pareto_shape = 2.5;
  /// Concurrent workers; requests beyond that queue FIFO, so response time
  /// grows with queue depth — the signal load-aware policies feed on.
  int workers = 4;
  double response_bytes = 4096;
  std::uint64_t seed = 0x73727665ULL;  // "srve", mixed with the host id
  /// Ship responses through reliable delivery.
  bool reliable = true;
};

/// Backend server: fixed worker pool, seeded service draws, one response
/// per request. Per-worker busy-until times implement the queue — a
/// request is assigned the earliest-free worker (lowest index on ties) and
/// its response fires at max(now, worker_free) + service.
class ServerEndpoint : public emu::AppEndpoint {
 public:
  ServerEndpoint(ServerParams params);

  void start(emu::AppApi& api) override;
  void receive(emu::AppApi& api, const emu::AppMessage& message) override;
  void on_timer(emu::AppApi& api, std::int64_t tag) override;

  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::vector<std::uint64_t>& in) override;

 private:
  double draw_service();

  struct Job {
    NodeId reply_to = -1;
    std::uint64_t corr = 0;
  };

  ServerParams params_;
  Rng rng_;  // reseeded mix_seed(params.seed, host) in start()
  std::vector<double> worker_free_;
  std::uint64_t job_seq_ = 0;
  std::unordered_map<std::uint64_t, Job> jobs_;
};

struct LoadBalancerParams {
  PolicyKind policy = PolicyKind::RoundRobin;
  PolicyConfig policy_config{};
  /// Backend hosts, in index order the policy sees them.
  std::vector<NodeId> backends;
  /// Ship forwarded requests / relayed responses via reliable delivery.
  bool reliable = true;
};

/// Counters a LoadBalancerEndpoint exposes after a run. Touched only on
/// the LB host's engine; read after run() completes.
struct LbCounters {
  std::uint64_t requests_forwarded = 0;
  std::uint64_t responses_relayed = 0;
  /// Forwarded requests whose reliable delivery exhausted its retries
  /// (reported to the policy as on_error; the client request is dropped).
  std::uint64_t backend_errors = 0;
  /// Relayed responses that failed on the LB → client leg.
  std::uint64_t relay_errors = 0;
  /// Responses for flights already written off as errors (the reliable
  /// layer exhausted retries on lost ACKs although a copy was delivered).
  std::uint64_t stale_responses = 0;
};

/// Front-end load balancer: one instance on one host. Requests are
/// forwarded to policy-chosen backends with a fresh flight corr; responses
/// are matched to their flight, fed back to the policy as a latency
/// observation, and relayed to the requesting client under its corr.
class LoadBalancerEndpoint : public emu::AppEndpoint {
 public:
  LoadBalancerEndpoint(LoadBalancerParams params,
                       std::shared_ptr<LbCounters> counters = nullptr);

  void start(emu::AppApi& api) override;
  void receive(emu::AppApi& api, const emu::AppMessage& message) override;
  void on_send_failed(emu::AppApi& api,
                      const emu::AppMessage& message) override;

  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::vector<std::uint64_t>& in) override;

  const LbPolicy& policy() const { return *policy_; }

 private:
  struct Flight {
    NodeId client = -1;
    std::uint64_t client_corr = 0;
    double bytes = 0;
    double t0 = 0;
    std::uint32_t backend = 0;
  };

  LoadBalancerParams params_;
  std::unique_ptr<LbPolicy> policy_;
  std::shared_ptr<LbCounters> counters_;
  std::uint64_t flight_seq_ = 0;
  std::unordered_map<std::uint64_t, Flight> inflight_;
};

struct ClientParams {
  /// Front-end host requests are sent to.
  NodeId lb = -1;
  /// Simulated users aggregated on this host (Poisson superposition: the
  /// host emits one merged arrival process of rate users × rate_per_user).
  int users = 100;
  /// Per-user request rate (requests / second).
  double rate_per_user = 1.0;
  /// Stop generating at this sim time (responses may arrive later).
  double duration_s = 10.0;
  double request_bytes = 512;
  /// Latency series id from Emulator::register_latency_series.
  int series = 0;
  /// First user id on this host (so user ids are globally unique).
  std::uint64_t user_base = 0;
  std::uint64_t seed = 0x636c6e74ULL;  // "clnt", mixed with the host id
  /// Ship requests via reliable delivery.
  bool reliable = true;
};

/// Per-client-host counters (same ownership rule as LbCounters).
struct ClientCounters {
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_received = 0;
  /// Requests whose client → LB reliable send exhausted its retries.
  std::uint64_t send_failures = 0;
  /// Responses for requests already written off as send failures.
  std::uint64_t stale_responses = 0;
};

/// Open-loop Poisson client host. Arrivals are one exponential-gap timer
/// chain (rate = users × rate_per_user); each arrival is attributed to a
/// uniformly drawn user id so key-affinity policies see the full user
/// population. Open-loop: arrivals never wait for responses, so a slow
/// backend builds queue instead of throttling offered load.
class ClientEndpoint : public emu::AppEndpoint {
 public:
  ClientEndpoint(ClientParams params,
                 std::shared_ptr<ClientCounters> counters = nullptr);

  void start(emu::AppApi& api) override;
  void receive(emu::AppApi& api, const emu::AppMessage& message) override;
  void on_timer(emu::AppApi& api, std::int64_t tag) override;
  void on_send_failed(emu::AppApi& api,
                      const emu::AppMessage& message) override;

  void save_state(std::vector<std::uint64_t>& out) const override;
  void load_state(const std::vector<std::uint64_t>& in) override;

 private:
  void arm_next(emu::AppApi& api);

  ClientParams params_;
  Rng rng_;  // reseeded mix_seed(params.seed, host) in start()
  std::uint64_t seq_ = 0;
  std::shared_ptr<ClientCounters> counters_;
  /// corr → send time of requests awaiting a response.
  std::unordered_map<std::uint64_t, double> outstanding_;
};

}  // namespace massf::app
