#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/thread_annotations.hpp"

namespace massf {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info ";
    case LogLevel::Warn: return "warn ";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off  ";
  }
  return "?";
}

/// Serializes writes to stderr. The stream itself is global, but every
/// emitter goes through write(), so holding `m` across the whole insertion
/// chain is what keeps concurrent log lines from interleaving mid-line.
struct LogSink {
  util::Mutex m;

  void write(const char* level, const std::string& message) MASSF_EXCLUDES(m) {
    util::MutexLock lock(m);
    std::cerr << "[" << level << "] " << message << '\n';
  }
};

LogSink g_sink;

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  g_sink.write(level_name(level), message);
}

}  // namespace massf
