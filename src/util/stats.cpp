#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace massf {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  MASSF_REQUIRE(count_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  MASSF_REQUIRE(count_ > 0, "max of empty accumulator");
  return max_;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double total = 0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

double normalized_imbalance(std::span<const double> loads) {
  const double m = mean(loads);
  if (m == 0.0) return 0.0;
  return stddev(loads) / m;
}

double max_over_mean(std::span<const double> loads) {
  const double m = mean(loads);
  if (m == 0.0) return 1.0;
  double mx = loads.empty() ? 0.0 : loads[0];
  for (double x : loads) mx = std::max(mx, x);
  return mx / m;
}

std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t half_window) {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  const auto n = static_cast<std::ptrdiff_t>(xs.size());
  const auto h = static_cast<std::ptrdiff_t>(half_window);
  // O(n) sliding window: maintain the sum of [i-h, i+h] clipped to range.
  double window_sum = 0;
  std::ptrdiff_t lo = 0, hi = -1;  // current inclusive window bounds
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t want_lo = std::max<std::ptrdiff_t>(0, i - h);
    const std::ptrdiff_t want_hi = std::min<std::ptrdiff_t>(n - 1, i + h);
    while (hi < want_hi) window_sum += xs[static_cast<std::size_t>(++hi)];
    while (lo < want_lo) window_sum -= xs[static_cast<std::size_t>(lo++)];
    out[static_cast<std::size_t>(i)] =
        window_sum / static_cast<double>(want_hi - want_lo + 1);
  }
  return out;
}

double relative_difference(double a, double b) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) return 0.0;
  return std::abs(a - b) / denom;
}

}  // namespace massf
