// Deterministic pseudo-random number generation.
//
// Every stochastic component in massf (topology generation, traffic models,
// partitioner tie-breaking) draws from an explicitly seeded massf::Rng so
// that experiments are bit-reproducible across runs and machines. The
// engine is xoshiro256** seeded via splitmix64, which is fast, tiny, and
// passes BigCrush — more than adequate for simulation workloads.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "util/error.hpp"

namespace massf {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mix two 64-bit values into one; used to derive independent substream
/// seeds (e.g. per-flow, per-node) from a master experiment seed.
constexpr std::uint64_t mix_seed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// plugged into <random> distributions, though massf code prefers the
/// built-in helpers below for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed (splitmix64 expansion).
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Raw generator state, for checkpoint/restore: a stream resumed via
  /// set_state(state()) continues the exact draw sequence.
  const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    MASSF_REQUIRE(bound > 0, "next_below requires a positive bound");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (-bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    MASSF_REQUIRE(lo <= hi, "next_int requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) {
    MASSF_REQUIRE(lo <= hi, "next_double requires lo <= hi");
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool next_bool(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double next_exponential(double mean) {
    MASSF_REQUIRE(mean > 0, "exponential mean must be positive");
    double u = next_double();
    // Avoid log(0); the probability of u == 0 is ~2^-53 but be exact anyway.
    if (u <= 0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Pareto distributed value with given shape (alpha) and scale (minimum).
  /// Used by the HTTP workload model for heavy-tailed object sizes.
  double next_pareto(double shape, double scale) {
    MASSF_REQUIRE(shape > 0 && scale > 0, "pareto parameters must be positive");
    double u = next_double();
    if (u <= 0) u = 0x1.0p-53;
    return scale / std::pow(u, 1.0 / shape);
  }

  /// Fisher–Yates shuffle (deterministic given the generator state).
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Pick a uniformly random element from a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    MASSF_REQUIRE(!items.empty(), "pick requires a non-empty vector");
    return items[next_below(items.size())];
  }

  /// Sample an index proportionally to the (non-negative) weights. At least
  /// one weight must be positive.
  std::size_t pick_weighted(const std::vector<double>& weights) {
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    MASSF_REQUIRE(total > 0, "pick_weighted requires positive total weight");
    double target = next_double() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target <= 0) return i;
    }
    return weights.size() - 1;  // Floating-point slack: fall to the last bin.
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace massf
