// Fixed-bucket log-scale latency histogram.
//
// The app layer (src/app) accounts per-request latency into these: 64
// geometric buckets doubling from 1 µs, so the whole range from sub-µs to
// years fits in a fixed 512-byte array and recording is a branch-free
// exponent extraction — no allocation on the hot path. Because buckets are
// plain uint64 counters, merging two histograms is an element-wise add:
// commutative and associative, so any deterministic merge order (the
// emulator folds per-engine slots in engine index order) yields identical
// results regardless of execution mode — the property that keeps
// history_hash-adjacent metrics bit-identical across Sequential/Threaded ×
// GlobalWindow/ChannelLookahead (DESIGN.md §14).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "util/error.hpp"

namespace massf {

class LatencyHistogram {
 public:
  static constexpr int kBuckets = 64;
  /// Lower edge of bucket 1; bucket 0 catches everything below it.
  static constexpr double kBaseSeconds = 1e-6;

  /// Record one sample. Bucket 0 is [0, 1 µs); bucket i >= 1 is
  /// [1 µs · 2^(i-1), 1 µs · 2^i); the last bucket absorbs overflow.
  void record(double seconds) {
    counts_[static_cast<std::size_t>(bucket_of(seconds))] += 1;
  }

  /// Element-wise add — commutative, so merge order cannot leak execution
  /// order into the result.
  void merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i)
      counts_[static_cast<std::size_t>(i)] +=
          other.counts_[static_cast<std::size_t>(i)];
  }

  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : counts_) n += c;
    return n;
  }

  bool empty() const { return count() == 0; }

  /// Quantile estimate: the geometric midpoint of the bucket where the
  /// cumulative count first reaches ceil(p · total). Pure integer scan plus
  /// a closed-form midpoint, so the estimate is bit-reproducible.
  double quantile(double p) const {
    MASSF_REQUIRE(p >= 0.0 && p <= 1.0, "quantile wants p in [0, 1]");
    const std::uint64_t total = count();
    if (total == 0) return 0.0;
    std::uint64_t target =
        static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total)));
    if (target == 0) target = 1;
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts_[static_cast<std::size_t>(i)];
      if (seen >= target) return midpoint(i);
    }
    return midpoint(kBuckets - 1);
  }

  std::uint64_t bucket(int i) const {
    MASSF_REQUIRE(i >= 0 && i < kBuckets, "bucket index out of range");
    return counts_[static_cast<std::size_t>(i)];
  }

  /// Checkpoint support: raw counters in bucket order.
  const std::array<std::uint64_t, kBuckets>& raw() const { return counts_; }
  void set_raw(const std::array<std::uint64_t, kBuckets>& counts) {
    counts_ = counts;
  }

  bool operator==(const LatencyHistogram& other) const {
    return counts_ == other.counts_;
  }

  /// Bucket index for a sample (exposed for tests).
  static int bucket_of(double seconds) {
    if (!(seconds > 0.0)) return 0;
    const double ratio = seconds / kBaseSeconds;
    if (ratio < 1.0) return 0;
    int exp = 0;
    (void)std::frexp(ratio, &exp);  // ratio = m·2^exp, m in [0.5, 1)
    return exp < kBuckets ? exp : kBuckets - 1;
  }

 private:
  /// Representative value for bucket i: geometric mean of its edges.
  static double midpoint(int i) {
    if (i == 0) return kBaseSeconds * 0.5;
    const double lo = kBaseSeconds * std::ldexp(1.0, i - 1);
    return lo * 1.4142135623730951;  // lo·√2 = √(lo·hi) for hi = 2·lo
  }

  std::array<std::uint64_t, kBuckets> counts_{};
};

}  // namespace massf
