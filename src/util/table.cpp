#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace massf {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MASSF_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& text) {
  MASSF_REQUIRE(!rows_.empty(), "call row() before cell()");
  MASSF_REQUIRE(rows_.back().size() < headers_.size(),
                "row has more cells than headers (" << headers_.size() << ")");
  rows_.back().push_back(text);
  return *this;
}

Table& Table::cell(const char* text) { return cell(std::string(text)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(std::size_t value) { return cell(std::to_string(value)); }
Table& Table::cell(long long value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      os << std::left << std::setw(static_cast<int>(widths[c])) << text;
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string format_percent_change(double from, double to) {
  if (from == 0.0) return "n/a";
  const double pct = (to - from) / from * 100.0;
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << std::showpos << pct << "%";
  return os.str();
}

}  // namespace massf
