#include "util/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace massf {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  MASSF_REQUIRE(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  MASSF_REQUIRE(cells.size() == headers_.size(),
                "row width " << cells.size() << " != header width "
                             << headers_.size());
  rows_.push_back(cells);
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << escape(cells[i]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << to_string();
  if (!out) throw std::runtime_error("write failed for " + path);
}

}  // namespace massf
