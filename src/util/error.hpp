// Error-handling primitives shared by every massf module.
//
// MASSF_REQUIRE is for precondition violations by the caller (throws
// std::invalid_argument); MASSF_CHECK is for internal invariants (throws
// massf::InternalError). Both always fire, in every build type: the library
// is used for research-grade measurements where a silently-corrupt result is
// far more expensive than a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace massf {

/// Thrown when an internal invariant of the library is violated. Seeing this
/// exception always indicates a bug in massf, not in user code.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_require(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InternalError(os.str());
}

}  // namespace detail
}  // namespace massf

/// Validate a caller-supplied precondition; throws std::invalid_argument.
#define MASSF_REQUIRE(expr, msg)                                      \
  do {                                                                \
    if (!(expr))                                                      \
      ::massf::detail::throw_require(#expr, __FILE__, __LINE__,       \
                                     (std::ostringstream{} << msg).str()); \
  } while (false)

/// Validate an internal invariant; throws massf::InternalError.
#define MASSF_CHECK(expr, msg)                                        \
  do {                                                                \
    if (!(expr))                                                      \
      ::massf::detail::throw_check(#expr, __FILE__, __LINE__,         \
                                   (std::ostringstream{} << msg).str()); \
  } while (false)
