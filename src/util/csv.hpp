// Minimal CSV emission for bench artifacts.
//
// Benches print human-readable tables to stdout and can additionally dump
// machine-readable CSV (for replotting figures). Quoting follows RFC 4180.
#pragma once

#include <string>
#include <vector>

namespace massf {

/// Incremental CSV writer; rows must match the header width.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(const std::vector<std::string>& cells);

  /// Full document (header + rows) as a string.
  std::string to_string() const;

  /// Write the document to a file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Quote a single field per RFC 4180 (only when needed).
  static std::string escape(const std::string& field);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace massf
