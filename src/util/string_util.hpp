// Small string helpers used by the network-description parser and benches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace massf {

/// Strip ASCII whitespace from both ends.
std::string trim(std::string_view text);

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Split on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parse helpers that throw std::invalid_argument with the offending text.
long long parse_int(std::string_view text);
double parse_double(std::string_view text);

/// Human-readable byte count ("1.5 MB").
std::string format_bytes(double bytes);

/// Human-readable bit rate ("40.0 Gb/s").
std::string format_bandwidth(double bits_per_second);

}  // namespace massf
