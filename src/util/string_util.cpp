#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace massf {

namespace {
bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string trim(std::string_view text) {
  std::size_t begin = 0, end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return std::string(text.substr(begin, end - begin));
}

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && is_space(text[i])) ++i;
    std::size_t start = i;
    while (i < text.size() && !is_space(text[i])) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

long long parse_int(std::string_view text) {
  const std::string trimmed = trim(text);
  long long value = 0;
  auto [ptr, ec] = std::from_chars(trimmed.data(),
                                   trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size())
    throw std::invalid_argument("not an integer: '" + trimmed + "'");
  return value;
}

double parse_double(std::string_view text) {
  const std::string trimmed = trim(text);
  if (trimmed.empty()) throw std::invalid_argument("not a number: ''");
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size())
    throw std::invalid_argument("not a number: '" + trimmed + "'");
  return value;
}

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return format_double(bytes, 1) + " " + units[unit];
}

std::string format_bandwidth(double bits_per_second) {
  static const char* units[] = {"b/s", "Kb/s", "Mb/s", "Gb/s", "Tb/s"};
  int unit = 0;
  while (bits_per_second >= 1000.0 && unit < 4) {
    bits_per_second /= 1000.0;
    ++unit;
  }
  return format_double(bits_per_second, 1) + " " + units[unit];
}

}  // namespace massf
