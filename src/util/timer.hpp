// Wall-clock stopwatch for measuring real (threaded) emulation runs.
#pragma once

#include <chrono>

namespace massf {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace massf
