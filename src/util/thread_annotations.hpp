// Clang Thread Safety Analysis annotations + annotated mutex wrappers.
//
// The kernel's headline guarantee — bit-identical history_hash across
// sync modes × execution modes — is a *static* property of who may touch
// what under which lock. These macros let Clang prove lock discipline at
// compile time (-Wthread-safety, enabled by the MASSF_THREAD_SAFETY CMake
// option); on GCC and other compilers they expand to nothing, so the
// annotated tree builds identically everywhere.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// members with MASSF_GUARDED_BY(some_std_mutex) teaches Clang nothing.
// massf code therefore locks through the annotated wrappers below:
//
//   util::Mutex m;                               // a capability
//   std::vector<Event> box MASSF_GUARDED_BY(m);  // state it protects
//   { util::MutexLock lock(m); box.push_back(e); }
//
// Any access to `box` outside a MutexLock scope (or a function marked
// MASSF_REQUIRES(m)) is a compile error under Clang. DESIGN.md §9 maps the
// kernel's capabilities.
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MASSF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef MASSF_THREAD_ANNOTATION
#define MASSF_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define MASSF_CAPABILITY(x) MASSF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define MASSF_SCOPED_CAPABILITY MASSF_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be touched while holding `x`.
#define MASSF_GUARDED_BY(x) MASSF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define MASSF_PT_GUARDED_BY(x) MASSF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that acquires / releases the capability itself.
#define MASSF_ACQUIRE(...) \
  MASSF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define MASSF_RELEASE(...) \
  MASSF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define MASSF_TRY_ACQUIRE(...) \
  MASSF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function that must be called with / without the capability held.
#define MASSF_REQUIRES(...) \
  MASSF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define MASSF_EXCLUDES(...) \
  MASSF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model (e.g. quiescent-phase
/// access proven by a barrier rather than a lock). Use sparingly; every
/// use needs a comment stating the actual happens-before argument.
#define MASSF_NO_THREAD_SAFETY_ANALYSIS \
  MASSF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace massf::util {

/// std::mutex with capability attributes Clang can reason about.
class MASSF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MASSF_ACQUIRE() { m_.lock(); }
  void unlock() MASSF_RELEASE() { m_.unlock(); }
  bool try_lock() MASSF_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// Scoped lock over util::Mutex (std::lock_guard is invisible to the
/// analysis on libstdc++, so massf code uses this instead).
class MASSF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) MASSF_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~MutexLock() MASSF_RELEASE() { m_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& m_;
};

}  // namespace massf::util
