// Adaptive spin-then-park waiting primitives shared by the DES kernel's
// threaded runners (both SyncMode protocols — DESIGN.md §11).
//
// The pre-batching idle protocol burned a scheduler quantum per poll
// (std::this_thread::yield loops) or paid a futex syscall per window
// (std::barrier). Both are wrong defaults for a conservative DES: idle
// spans are usually *short* (a neighbour LP publishes its clock within a
// few hundred nanoseconds) but occasionally *long* (a genuinely idle
// simulation span that only a rendezvous can jump). The primitives here
// split the difference:
//
//   * SpinWait — a bounded cpu_relax() spin that escalates: for the first
//     `spin_budget` iterations it executes a pause instruction (cheap,
//     keeps the core's load port free for the line it is polling); past
//     the budget it either tells the caller to park (park allowed) or
//     degrades to sched_yield (park disallowed — the pre-change behaviour,
//     kept selectable so benchmarks can A/B the old protocol).
//   * WaitSlot — a one-waiter eventcount: the waiter snapshots an epoch,
//     re-checks its predicate, and parks on the epoch word via C++20
//     atomic wait (futex on Linux); signalers bump the epoch and issue the
//     wake syscall only when a waiter actually announced itself, so the
//     signal fast path is one uncontended fetch_add + load.
//   * SpinBarrier — a sense-reversing centralized barrier over the same
//     spin-then-park policy, with a single-threaded completion step
//     (replaces std::barrier in both threaded runners so the idle policy
//     is uniform and tunable).
//
// Every busy-wait loop in src/ must go through this header — massf-lint's
// busy-wait rule flags raw yield/empty-while polls elsewhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace massf::util {

/// One iteration of polite same-core waiting: the architectural pause/yield
/// hint, a compiler barrier on unknown targets. Never a syscall.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Round-robin-pin the calling thread to `cpu` (mod the online set).
/// Returns false when unsupported; pinning is a locality hint, never a
/// correctness requirement.
inline bool pin_current_thread(unsigned cpu) noexcept {
#if defined(__linux__)
  const unsigned n = std::thread::hardware_concurrency();
  if (n == 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % n), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

/// Bounded-spin policy object. Usage:
///
///   SpinWait spin(budget, park_allowed);
///   while (!predicate()) {
///     if (spin.should_park()) { <announce + park>; spin.reset(); }
///   }
///
/// should_park() burns one cpu_relax() per call while the budget lasts and
/// returns false; once exhausted it returns true when parking is allowed,
/// or yields the scheduler quantum and returns false when it is not (the
/// caller then stays in its poll loop — the legacy protocol).
class SpinWait {
 public:
  explicit SpinWait(std::uint32_t spin_budget, bool park_allowed = true)
      : budget_(spin_budget), park_(park_allowed) {}

  bool should_park() noexcept {
    if (spun_ < budget_) {
      ++spun_;
      cpu_relax();
      return false;
    }
    if (park_) return true;
    std::this_thread::yield();  // massf-lint: allow(busy-wait)
    return false;
  }

  /// Re-arm the spin budget (after a park or a successful poll).
  void reset() noexcept { spun_ = 0; }

  std::uint32_t spun() const noexcept { return spun_; }

 private:
  std::uint32_t spun_ = 0;
  const std::uint32_t budget_;
  const bool park_;
};

/// One-waiter eventcount. The waiter side:
///
///   const std::uint32_t e = slot.prepare();
///   if (predicate()) ...        // re-check AFTER prepare()
///   else slot.park(e);          // sleeps unless a signal raced in
///
/// Any number of signalers call signal() after making their predicate
/// change visible. prepare() → predicate → park() never loses a wakeup:
/// a signal between prepare() and park() bumps the epoch, and atomic
/// wait(old) refuses to sleep on a changed word. The parked_ announcement
/// uses seq_cst on both sides (classic Dekker handshake) so a signaler
/// either sees the announcement and wakes, or the waiter's recheck sees
/// the bumped epoch.
class alignas(64) WaitSlot {
 public:
  std::uint32_t prepare() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Park until the epoch moves past `seen`. Returns immediately if a
  /// signal already raced in.
  void park(std::uint32_t seen) noexcept {
    parked_.store(true, std::memory_order_seq_cst);
    if (epoch_.load(std::memory_order_seq_cst) == seen)
      epoch_.wait(seen, std::memory_order_acquire);
    parked_.store(false, std::memory_order_relaxed);
  }

  /// Publish "something changed": bump the epoch, wake a parked waiter.
  /// The wake syscall is skipped when no waiter announced itself.
  void signal() noexcept {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst)) epoch_.notify_one();
  }

  /// Observability for tests: is a waiter currently announced?
  bool has_parked_waiter() const noexcept {
    return parked_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<std::uint32_t> epoch_{0};
  std::atomic<bool> parked_{false};
};

/// Sense-reversing centralized barrier with a completion step, built on the
/// spin-then-park policy. Semantics match std::barrier with a completion
/// function: the last arriver runs `completion` single-threaded (every
/// other participant is blocked in arrive_and_wait), then releases the
/// phase. Reusable across phases; the participant count is fixed.
class SpinBarrier {
 public:
  SpinBarrier(int participants, std::function<void()> completion,
              std::uint32_t spin_budget, bool park_allowed = true)
      : n_(participants),
        completion_(std::move(completion)),
        spin_budget_(spin_budget),
        park_(park_allowed) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const std::uint32_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      arrived_.store(0, std::memory_order_relaxed);
      if (completion_) completion_();
      // Release the phase; wake sleepers only if any announced themselves
      // (same Dekker handshake as WaitSlot).
      phase_.fetch_add(1, std::memory_order_seq_cst);
      if (parked_.load(std::memory_order_seq_cst) > 0) phase_.notify_all();
      return;
    }
    SpinWait spin(spin_budget_, park_);
    while (phase_.load(std::memory_order_acquire) == phase) {
      if (spin.should_park()) {
        parked_.fetch_add(1, std::memory_order_seq_cst);
        if (phase_.load(std::memory_order_seq_cst) == phase)
          phase_.wait(phase, std::memory_order_acquire);
        parked_.fetch_sub(1, std::memory_order_relaxed);
        spin.reset();
      }
    }
  }

 private:
  const int n_;
  const std::function<void()> completion_;
  const std::uint32_t spin_budget_;
  const bool park_;
  alignas(64) std::atomic<int> arrived_{0};
  alignas(64) std::atomic<std::uint32_t> phase_{0};
  alignas(64) std::atomic<int> parked_{0};
};

}  // namespace massf::util
