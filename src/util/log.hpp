// Leveled logging.
//
// The emulator and benches narrate long runs through this logger. Levels are
// filtered at runtime (default: Info). Output goes to stderr so bench tables
// on stdout stay clean.
#pragma once

#include <sstream>
#include <string>

namespace massf {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log-level filter (process-wide, not thread-local).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line ("[level] message") if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream os;
  explicit LogLine(LogLevel lvl) : level(lvl) {}
  ~LogLine() { log_message(level, os.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    os << value;
    return *this;
  }
};
}  // namespace detail

}  // namespace massf

#define MASSF_LOG_DEBUG ::massf::detail::LogLine(::massf::LogLevel::Debug)
#define MASSF_LOG_INFO ::massf::detail::LogLine(::massf::LogLevel::Info)
#define MASSF_LOG_WARN ::massf::detail::LogLine(::massf::LogLevel::Warn)
#define MASSF_LOG_ERROR ::massf::detail::LogLine(::massf::LogLevel::Error)
