// Statistical helpers used by the load-balance metrics and the benches.
//
// The paper's central metric is the *normalized load imbalance*: the standard
// deviation of per-engine simulation-kernel event rates divided by their
// mean (§4.1.1). That quantity, plus general accumulators and time series
// smoothing for the PROFILE clustering algorithm, live here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace massf {

/// Streaming accumulator for count/mean/variance (Welford) plus min/max.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  /// Population variance (divides by n). Returns 0 for fewer than 2 samples.
  double variance() const;
  /// Population standard deviation.
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double sum_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Mean of a sample span (0 for an empty span).
double mean(std::span<const double> xs);

/// Population standard deviation of a sample span.
double stddev(std::span<const double> xs);

/// The paper's load-imbalance metric: stddev({k_i}) / mean({k_i}) for the
/// per-engine kernel event rates k_i. Returns 0 when the mean is 0 (an
/// entirely idle system is trivially balanced).
double normalized_imbalance(std::span<const double> loads);

/// max/mean of a sample span; an alternative imbalance measure reported by
/// some benches (1.0 == perfectly balanced). Returns 1 when the mean is 0.
double max_over_mean(std::span<const double> loads);

/// Centered moving average with the given half-window (window = 2*half+1,
/// truncated at the ends). Used by the PROFILE segment-clustering algorithm
/// to smooth per-engine load curves before locating dominating-node changes.
std::vector<double> moving_average(std::span<const double> xs,
                                   std::size_t half_window);

/// Relative difference |a-b| / max(|a|,|b|); 0 when both are 0.
double relative_difference(double a, double b);

}  // namespace massf
