// Fixed-width plain-text table rendering.
//
// Every bench binary reproduces a paper table or figure by printing an
// aligned text table (rows = the paper's series). This tiny formatter keeps
// that output consistent and diff-friendly across benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace massf {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with a fixed precision so bench output is stable.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  Table& row();
  Table& cell(const std::string& text);
  Table& cell(const char* text);
  Table& cell(double value, int precision = 3);
  Table& cell(std::size_t value);
  Table& cell(long long value);
  Table& cell(int value);

  std::size_t row_count() const { return rows_.size(); }

  /// Render with a header rule and 2-space column gaps.
  std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (used for table cells and logs).
std::string format_double(double value, int precision = 3);

/// Render "x.x%" percentage change from `from` to `to`; negative = reduction.
std::string format_percent_change(double from, double to);

}  // namespace massf
